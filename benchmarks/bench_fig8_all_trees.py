"""E8 / Figure 8: Algorithm All-Trees -- polynomial-vs-infinite classification
and finite provenance computation, on the paper instance and on larger graphs."""

from conftest import report

from repro.datalog import all_trees, bag_multiplicities
from repro.semirings import CompletedNaturalsSemiring
from repro.workloads import (
    chain_graph_database,
    dag_database,
    figure7_database,
    figure7_edb_ids,
    figure7_program,
)


def test_fig8_all_trees_on_figure7(benchmark):
    database = figure7_database()
    program = figure7_program()
    result = benchmark(lambda: all_trees(program, database, edb_ids=figure7_edb_ids()))
    assert len(result.polynomials) == 3 and len(result.infinite) == 4
    rows = [
        f"{atom}: {polynomial}"
        for atom, polynomial in sorted(result.polynomials.items(), key=lambda kv: str(kv[0]))
    ] + [f"{atom}: ∞ (not a polynomial)" for atom in sorted(result.infinite, key=str)]
    report("Figure 8: All-Trees classification on the Figure 7 instance", rows)


def test_fig8_all_trees_on_acyclic_dag(benchmark):
    """On a DAG every tuple has polynomial provenance (no cycles to detect)."""
    natinf = CompletedNaturalsSemiring()
    database = dag_database(natinf, layers=4, width=3)
    program = figure7_program()
    result = benchmark(lambda: all_trees(program, database))
    assert not result.infinite
    assert all(not p.is_zero() for p in result.polynomials.values())


def test_fig8_bag_semantics_via_all_trees(benchmark):
    """The Section 7 remark: All-Trees yields terminating datalog bag evaluation."""
    natinf = CompletedNaturalsSemiring()
    database = chain_graph_database(natinf, length=12)
    program = figure7_program()
    multiplicities = benchmark(lambda: bag_multiplicities(program, database))
    assert all(value.is_finite for value in multiplicities.values())
