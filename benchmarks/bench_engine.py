"""S7: pipelined physical execution vs optimized operator-at-a-time plans.

PR 4's planner fixes the *logical* plan; this benchmark measures the
*physical* layer added on top (:mod:`repro.engine`).  Both sides evaluate
the **same optimized plan** -- the baseline operator-at-a-time, materializing
a full intermediate K-relation per node, the contender through the pipelined
executor (fused scan/select/project, hash join with cost-driven build side,
batched annotation accumulation).  Both timings are end-to-end: planning is
included in both, and plan compilation is included in the pipelined side.

Workloads:

* the star filter-last query of ``bench_planner`` (the planner pushes the
  filter down; the engine then pipelines what remains);
* two-hop reachability ``π_{a,c}(E(a,b) ⋈ ρ E(b,c))`` over random graphs --
  a large join with heavy duplicate-merging in the projection, which is
  exactly where batched accumulation and Tup-free intermediates pay.

A second series pits the two physical *storage backends* against each
other on the same pipelined plan: row (dict-of-``Tup``) vs columnar
(per-attribute value arrays with a parallel annotation array), where the
columnar side additionally runs the whole-column vectorized kernels of
:mod:`repro.engine.vectorized` -- dictionary-encoded selection masks,
code-level hash joins, batched ``np.unique`` annotation accumulation.

Every instance cross-checks the two results annotation-for-annotation, so
the benchmark doubles as an equivalence test.  The acceptance bars are a
>= 3x engine win and a >= 5x columnar-over-row win on the respective
largest instances (hard-asserted only under ``REPRO_BENCH_STRICT=1``, see
``conftest.check_speedup``).  The columnar series needs a numpy runtime
and is skipped (with a visible note) without one.

Runs standalone (CI smoke): ``PYTHONPATH=src python benchmarks/bench_engine.py``
or under pytest: ``PYTHONPATH=src python -m pytest benchmarks/bench_engine.py``.
"""

import time

from conftest import check_speedup, report
from reporting import emit, ops_snapshot

from repro.algebra.ast import Q
from repro.relations.database import Database
from repro.semirings import NaturalsSemiring, TropicalSemiring
from repro.workloads import random_relation, star_join_database

SEED = 13

#: The two-hop instance series: (semiring, edges, domain size).  The last
#: entry is "the largest instance" the acceptance criterion refers to.
TWO_HOP_INSTANCES = [
    (TropicalSemiring(), 1500, 80),
    (NaturalsSemiring(), 2500, 100),
    (NaturalsSemiring(), 4000, 120),
]

#: The columnar-vs-row series: both sides run the same optimized plan
#: through the pipelined executor, differing only in ``storage=``.  The
#: last entry is the largest instance the >= 5x acceptance bar refers to.
COLUMNAR_INSTANCES = [
    (TropicalSemiring(), 4000, 120),
    (NaturalsSemiring(), 8000, 200),
]


def _timed(thunk):
    start = time.perf_counter()
    result = thunk()
    return result, time.perf_counter() - start


def _compare(tag, query, database):
    """Time optimized-naive vs optimized-pipelined; cross-check the results."""
    baseline, baseline_time = _timed(lambda: query.evaluate(database, optimize=True))
    pipelined, pipelined_time = _timed(
        lambda: query.evaluate(database, optimize=True, executor="pipelined")
    )
    assert baseline.equal_to(pipelined), f"engine changed the result on {tag}"
    return {
        "tag": tag,
        "baseline_time": baseline_time,
        "pipelined_time": pipelined_time,
        "tuples": len(pipelined),
    }


def _star_record(fact_tuples=3000, domain_size=30):
    database = star_join_database(
        NaturalsSemiring(),
        fact_tuples=fact_tuples,
        dimension_tuples=max(40, fact_tuples // 50),
        domain_size=domain_size,
        seed=SEED,
    )
    x0 = sorted(tup["x"] for tup in database.relation("D1"))[0]
    query = (
        Q.relation("D1")
        .join(Q.relation("D2"))
        .join(Q.relation("F"))
        .where_eq("x", x0)
        .project("a", "y")
    )
    return _compare(f"star filter-last (N, facts={fact_tuples})", query, database)


def _two_hop_database(semiring, edges, domain_size):
    database = Database(semiring)
    database.register(
        "E",
        random_relation(
            semiring, ["a", "b"], num_tuples=edges, domain_size=domain_size, seed=SEED
        ),
    )
    return database


def _two_hop_query():
    return (
        Q.relation("E")
        .join(Q.relation("E").rename({"a": "b", "b": "c"}))
        .project("a", "c")
    )


def _two_hop_record(semiring, edges, domain_size):
    return _compare(
        f"two-hop reachability ({semiring.name}, edges={edges})",
        _two_hop_query(),
        _two_hop_database(semiring, edges, domain_size),
    )


def _columnar_record(semiring, edges, domain_size):
    """Time pipelined-row vs pipelined-columnar; cross-check the results."""
    database = _two_hop_database(semiring, edges, domain_size)
    query = _two_hop_query()
    row, row_time = _timed(
        lambda: query.evaluate(
            database, optimize=True, executor="pipelined", storage="row"
        )
    )
    columnar, columnar_time = _timed(
        lambda: query.evaluate(
            database, optimize=True, executor="pipelined", storage="columnar"
        )
    )
    assert row.equal_to(columnar), (
        f"columnar backend changed the result on {semiring.name}, edges={edges}"
    )
    columnar.check_consistency()
    return {
        "tag": f"two-hop columnar vs row ({semiring.name}, edges={edges})",
        "baseline_time": row_time,
        "pipelined_time": columnar_time,
        "baseline_storage": "row",
        "contender_storage": "columnar",
        "tuples": len(columnar),
    }


def _speedup(record):
    return record["baseline_time"] / max(record["pipelined_time"], 1e-9)


def _lines(record):
    return [
        f"{record['tag']}: {record['tuples']} result tuples",
        f"  optimized, operator-at-a-time {record['baseline_time'] * 1e3:8.1f} ms",
        f"  optimized, pipelined          {record['pipelined_time'] * 1e3:8.1f} ms"
        f"  ({_speedup(record):.1f}x faster, planning+compilation included)",
    ]


def _columnar_lines(record):
    return [
        f"{record['tag']}: {record['tuples']} result tuples",
        f"  pipelined, row backend        {record['baseline_time'] * 1e3:8.1f} ms",
        f"  pipelined, columnar backend   {record['pipelined_time'] * 1e3:8.1f} ms"
        f"  ({_speedup(record):.1f}x faster, vectorized kernels)",
    ]


def _vector_runtime() -> bool:
    from repro.engine.vectorized import numpy_available

    return numpy_available()


def _series_records():
    records = [_star_record()]
    records.extend(
        _two_hop_record(semiring, edges, domain)
        for semiring, edges, domain in TWO_HOP_INSTANCES[:-1]
    )
    return records


def test_engine_matches_naive_execution_across_series():
    lines = []
    for record in _series_records():
        lines.extend(_lines(record))
    report("S7: pipelined engine vs operator-at-a-time (series)", lines)


def test_engine_beats_materializing_path_on_largest_instance():
    semiring, edges, domain = TWO_HOP_INSTANCES[-1]
    record = _two_hop_record(semiring, edges, domain)
    report("S7: pipelined engine (largest instance)", _lines(record))
    check_speedup(_speedup(record), 3.0, "engine win on the largest instance")


def test_columnar_backend_matches_row_backend_across_series():
    import pytest

    if not _vector_runtime():
        pytest.skip("columnar vectorized kernels need a numpy runtime")
    lines = []
    for semiring, edges, domain in COLUMNAR_INSTANCES[:-1]:
        lines.extend(_columnar_lines(_columnar_record(semiring, edges, domain)))
    report("S7: columnar vs row storage (series)", lines)


def test_columnar_backend_beats_row_backend_on_largest_instance():
    import pytest

    if not _vector_runtime():
        pytest.skip("columnar vectorized kernels need a numpy runtime")
    semiring, edges, domain = COLUMNAR_INSTANCES[-1]
    record = _columnar_record(semiring, edges, domain)
    report("S7: columnar vs row storage (largest instance)", _columnar_lines(record))
    check_speedup(
        _speedup(record), 5.0, "columnar-over-row win on the largest instance"
    )


def _two_hop_ops(semiring, edges, domain_size, storage=None):
    """Semiring-op counts of the pipelined two-hop run (deterministic).

    With ``storage="columnar"`` the counts attribute the vectorized win:
    whole-column kernels replace the per-derivation ``plus``/``times``
    calls with array arithmetic, so the counted scalar ops collapse.
    """

    def run(instrumented):
        database = _two_hop_database(instrumented, edges, domain_size)
        _two_hop_query().evaluate(
            database, optimize=True, executor="pipelined", storage=storage
        )

    return ops_snapshot(semiring, run)


def main() -> None:
    records = _series_records()
    semiring, edges, domain = TWO_HOP_INSTANCES[-1]
    records.append(_two_hop_record(semiring, edges, domain))
    for record in records:
        record["speedup"] = _speedup(record)
        for line in _lines(record):
            print(line)
    largest = records[-1]
    print(f"\nlargest-instance engine win: {_speedup(largest):.1f}x (need >= 3x)")

    columnar_records = []
    if _vector_runtime():
        for col_semiring, col_edges, col_domain in COLUMNAR_INSTANCES:
            record = _columnar_record(col_semiring, col_edges, col_domain)
            record["speedup"] = _speedup(record)
            columnar_records.append(record)
            for line in _columnar_lines(record):
                print(line)
        largest_columnar = columnar_records[-1]
        print(
            f"\nlargest-instance columnar win: {_speedup(largest_columnar):.1f}x "
            "(need >= 5x)"
        )
    else:
        print("\ncolumnar series skipped: no numpy runtime for the vectorized kernels")

    ops_semiring, ops_edges, ops_domain = TWO_HOP_INSTANCES[0]
    summary = {
        "largest_speedup": _speedup(largest),
        "required_speedup": 3.0,
        "two_hop_instances": [
            {"semiring": s.name, "edges": e, "domain": d}
            for s, e, d in TWO_HOP_INSTANCES
        ],
        "columnar_instances": [
            {"semiring": s.name, "edges": e, "domain": d}
            for s, e, d in COLUMNAR_INSTANCES
        ],
        "semiring_ops": {
            "workload": f"two-hop pipelined ({ops_semiring.name}, edges={ops_edges})",
            **_two_hop_ops(ops_semiring, ops_edges, ops_domain),
        },
    }
    if columnar_records:
        summary["largest_columnar_speedup"] = _speedup(columnar_records[-1])
        summary["required_columnar_speedup"] = 5.0
        # Attribution: the same instance counted on both backends -- the
        # columnar side's scalar-op collapse is where the speedup comes from.
        summary["semiring_ops_by_storage"] = {
            "workload": f"two-hop pipelined ({ops_semiring.name}, edges={ops_edges})",
            "row": _two_hop_ops(ops_semiring, ops_edges, ops_domain, storage="row"),
            "columnar": _two_hop_ops(
                ops_semiring, ops_edges, ops_domain, storage="columnar"
            ),
        }
    emit("engine", records + columnar_records, summary=summary)
    check_speedup(_speedup(largest), 3.0, "engine win on the largest instance")
    if columnar_records:
        check_speedup(
            _speedup(columnar_records[-1]),
            5.0,
            "columnar-over-row win on the largest instance",
        )


if __name__ == "__main__":
    main()
