"""E7 / Figure 7: transitive closure with bag semantics, the algebraic system,
and the formal-power-series provenance (Catalan coefficients)."""

from conftest import report

from repro.datalog import GroundAtom, build_algebraic_system, datalog_provenance, evaluate
from repro.semirings import CompletedNaturalsSemiring, Monomial, NatInf
from repro.semirings.numeric import INFINITY
from repro.workloads import figure7_database, figure7_edb_ids, figure7_idb_ids, figure7_program

EXPECTED_MULTIPLICITIES = {
    ("a", "b"): NatInf(8),
    ("a", "c"): NatInf(3),
    ("c", "b"): NatInf(2),
    ("b", "d"): INFINITY,
    ("d", "d"): INFINITY,
    ("a", "d"): INFINITY,
    ("c", "d"): INFINITY,  # derivable but omitted from the paper's figure
}
CATALAN = [1, 1, 2, 5, 14]


def test_fig7b_transitive_closure_multiplicities(benchmark):
    database = figure7_database()
    program = figure7_program()
    result = benchmark(lambda: evaluate(program, database))
    rows = []
    for values, expected in sorted(EXPECTED_MULTIPLICITIES.items()):
        assert result.annotation(values) == expected
        rows.append(f"{values[0]} {values[1]}   {result.semiring.format_value(result.annotation(values))}")
    report("Figure 7(b): transitive closure with bag semantics over N∞", rows)


def test_fig7f_algebraic_system_construction(benchmark):
    database = figure7_database()
    program = figure7_program()
    system = benchmark(
        lambda: build_algebraic_system(
            program, database, idb_ids=figure7_idb_ids(), edb_ids=figure7_edb_ids()
        )
    )
    report("Figure 7(f): algebraic system Q-bar = T_q(R, Q-bar)", str(system).splitlines())
    assert str(system.equation("v")) in ("s + v^2", "v^2 + s")


def test_fig7_system_solution_in_natinf(benchmark):
    system = build_algebraic_system(
        figure7_program(), figure7_database(), idb_ids=figure7_idb_ids(), edb_ids=figure7_edb_ids()
    )
    natinf = CompletedNaturalsSemiring()
    solution = benchmark(lambda: system.solve(natinf))
    assert solution[GroundAtom("Q", ("a", "b"))] == NatInf(8)
    assert solution[GroundAtom("Q", ("a", "d"))] == INFINITY


def test_fig7_provenance_power_series(benchmark):
    """v = s + s² + 2s³ + 5s⁴ + 14s⁵ + ... (Catalan coefficients, footnote 6)."""
    database = figure7_database()
    program = figure7_program()
    provenance = benchmark(
        lambda: datalog_provenance(
            program, database, truncation_degree=5, edb_ids=figure7_edb_ids()
        )
    )
    v = provenance.provenance(GroundAtom("Q", ("d", "d")))
    for n in range(1, 6):
        assert v.coefficient(Monomial.var("s", n)) == NatInf(CATALAN[n - 1])
    x = provenance.provenance(GroundAtom("Q", ("a", "b")))
    report(
        "Figure 7: datalog provenance series (Section 6)",
        [f"x = {x}", f"v = {v}", f"u = {provenance.provenance(GroundAtom('Q', ('b', 'd')))}"],
    )
