"""E6 / Figure 6: a conjunctive query under bag semantics, via RA+ and via datalog."""

from conftest import report

from repro.algebra import ConjunctiveQuery
from repro.datalog import evaluate
from repro.workloads import figure6_database, figure6_program

EXPECTED = {("a", "a"): 4, ("a", "b"): 18, ("b", "b"): 16}


def test_fig6_datalog_derivation_tree_semantics(benchmark):
    database = figure6_database()
    program = figure6_program()
    result = benchmark(lambda: evaluate(program, database))
    rows = []
    for values, expected in sorted(EXPECTED.items()):
        assert result.annotation(values) == expected
        rows.append(f"{values[0]} {values[1]}   {expected}")
    report("Figure 6(c): Q(x,y) :- R(x,z), R(z,y) under bag semantics", rows)


def test_fig6_sum_of_products_ra_semantics(benchmark):
    """The equivalent RA+/CQ evaluation gives the same multiplicities (Section 5)."""
    database = figure6_database()
    cq = ConjunctiveQuery.parse("Q(x, y) :- R(x, z), R(z, y)")
    result = benchmark(lambda: cq.evaluate(database))
    for values, expected in EXPECTED.items():
        assert result.annotation(values) == expected
