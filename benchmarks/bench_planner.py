"""S6: semiring-aware query planner vs as-written evaluation.

Evaluates a deliberately badly written star-schema query -- the dimension
cross product first, the selective filter last::

    π_{a,y}( σ_{x = X0}( (D1 ⋈ D2) ⋈ F ) )

as written, and through :func:`repro.planner.optimize` (selection pushdown
into ``D1``, projection pushdown into the join sides, greedy cost-based join
reordering that starts from the filtered dimension and keeps the chain
connected).  The optimized timing *includes* the planning itself, so the
measured win is end-to-end.  Every instance cross-checks the two results
annotation-for-annotation (Proposition 3.4 says they must agree over any
commutative semiring), so the benchmark doubles as an equivalence test; the
acceptance bar is a >= 3x planner win on the largest instance.

Runs standalone (CI smoke): ``PYTHONPATH=src python benchmarks/bench_planner.py``
or under pytest: ``PYTHONPATH=src python -m pytest benchmarks/bench_planner.py``.
"""

import time

from conftest import check_speedup, report
from reporting import emit, ops_snapshot

from repro.algebra.ast import Q
from repro.planner import optimize
from repro.semirings import NaturalsSemiring, TropicalSemiring
from repro.workloads import star_join_database

#: The instance series: (semiring, fact tuples, domain size).  The last
#: entry is "the largest scaling instance" the acceptance criterion refers to.
INSTANCES = [
    (NaturalsSemiring(), 800, 20),
    (TropicalSemiring(), 1500, 25),
    (NaturalsSemiring(), 3000, 30),
    (NaturalsSemiring(), 6000, 30),
]

SEED = 13


def _bad_query(database):
    """The cross-product-first plan with the filter on top."""
    # Pick a selection constant that actually occurs in D1's x column so the
    # filtered result is non-trivial.
    x0 = sorted(tup["x"] for tup in database.relation("D1"))[0]
    return (
        Q.relation("D1")
        .join(Q.relation("D2"))
        .join(Q.relation("F"))
        .where_eq("x", x0)
        .project("a", "y")
    )


def _timed(thunk):
    start = time.perf_counter()
    result = thunk()
    return result, time.perf_counter() - start


def _record(semiring, fact_tuples, domain_size):
    database = star_join_database(
        semiring,
        fact_tuples=fact_tuples,
        dimension_tuples=max(40, fact_tuples // 50),
        domain_size=domain_size,
        seed=SEED,
    )
    query = _bad_query(database)
    baseline, baseline_time = _timed(lambda: query.evaluate(database))
    # End-to-end: planning time counts against the optimized run.
    optimized, optimized_time = _timed(
        lambda: query.evaluate(database, optimize=True)
    )
    assert baseline.equal_to(optimized), (
        f"planner changed the result on {semiring.name}, facts={fact_tuples}"
    )
    return {
        "tag": f"star filter-last query ({semiring.name}, facts={fact_tuples})",
        "baseline_time": baseline_time,
        "optimized_time": optimized_time,
        "tuples": len(optimized),
        "plan": str(optimize(query, database)),
    }


def _speedup(record):
    return record["baseline_time"] / max(record["optimized_time"], 1e-9)


def _lines(record):
    return [
        f"{record['tag']}: {record['tuples']} result tuples",
        f"  as written {record['baseline_time'] * 1e3:8.1f} ms",
        f"  optimized  {record['optimized_time'] * 1e3:8.1f} ms  ({_speedup(record):.1f}x faster, planning included)",
    ]


def test_planner_matches_as_written_across_series():
    lines = []
    for semiring, facts, domain in INSTANCES[:-1]:
        lines.extend(_lines(_record(semiring, facts, domain)))
    report("S6: planner vs as-written evaluation (series)", lines)


def test_planner_beats_as_written_on_largest_instance():
    semiring, facts, domain = INSTANCES[-1]
    record = _record(semiring, facts, domain)
    report("S6: planner vs as-written (largest scaling instance)", _lines(record))
    check_speedup(_speedup(record), 3.0, "planner win on the largest instance")


def _planner_ops(semiring, fact_tuples, domain_size):
    """Semiring-op counts of the optimized run on an instrumented database."""

    def run(instrumented):
        database = star_join_database(
            instrumented,
            fact_tuples=fact_tuples,
            dimension_tuples=max(40, fact_tuples // 50),
            domain_size=domain_size,
            seed=SEED,
        )
        _bad_query(database).evaluate(database, optimize=True)

    return ops_snapshot(semiring, run)


def main() -> None:
    records = [
        _record(semiring, facts, domain) for semiring, facts, domain in INSTANCES
    ]
    for record in records:
        record["speedup"] = _speedup(record)
        for line in _lines(record):
            print(line)
    print(f"\noptimized plan: {records[-1]['plan']}")
    print(f"largest-instance planner win: {_speedup(records[-1]):.1f}x (need >= 3x)")
    ops_semiring, ops_facts, ops_domain = INSTANCES[0]
    emit(
        "planner",
        records,
        summary={
            "largest_speedup": _speedup(records[-1]),
            "required_speedup": 3.0,
            "instances": [
                {"semiring": s.name, "facts": f, "domain": d} for s, f, d in INSTANCES
            ],
            "semiring_ops": {
                "workload": f"optimized star query ({ops_semiring.name}, facts={ops_facts})",
                **_planner_ops(ops_semiring, ops_facts, ops_domain),
            },
        },
    )
    check_speedup(_speedup(records[-1]), 3.0, "planner win on the largest instance")


if __name__ == "__main__":
    main()
