"""E5 / Figure 5: why-provenance and provenance polynomials, plus Theorem 4.3."""

from conftest import report

from repro.algebra import factorized_evaluate, provenance_of_query
from repro.semirings import Polynomial
from repro.workloads import (
    figure3_bag_database,
    figure5_provenance_ids,
    figure5_why_database,
    section2_query,
)

EXPECTED_WHY = {
    ("a", "c"): {"p"},
    ("a", "e"): {"p", "r"},
    ("d", "c"): {"p", "r"},
    ("d", "e"): {"r", "s"},
    ("f", "e"): {"r", "s"},
}
EXPECTED_POLYNOMIALS = {
    ("a", "c"): "2*p^2",
    ("a", "e"): "p*r",
    ("d", "c"): "p*r",
    ("d", "e"): "2*r^2 + r*s",
    ("f", "e"): "2*s^2 + r*s",
}


def test_fig5b_why_provenance(benchmark):
    database = figure5_why_database()
    query = section2_query()
    result = benchmark(lambda: query.evaluate(database))
    rows = []
    for tup, lineage in sorted(result.items(), key=lambda kv: str(kv[0])):
        key = (tup["a"], tup["c"])
        assert lineage == frozenset(EXPECTED_WHY[key])
        rows.append(f"{key[0]} {key[1]}   {{{', '.join(sorted(lineage))}}}")
    report("Figure 5(b): why-provenance of q", rows)


def test_fig5c_provenance_polynomials(benchmark):
    database = figure3_bag_database()
    query = section2_query()
    ids = figure5_provenance_ids()
    provenance = benchmark(lambda: provenance_of_query(query, database, ids=ids)[0])
    rows = []
    for tup, polynomial in sorted(provenance.items(), key=lambda kv: str(kv[0])):
        key = (tup["a"], tup["c"])
        assert polynomial == Polynomial.parse(EXPECTED_POLYNOMIALS[key])
        rows.append(f"{key[0]} {key[1]}   {polynomial}")
    report("Figure 5(c): provenance polynomials of q", rows)


def test_theorem43_factorization(benchmark):
    """Theorem 4.3: provenance-then-evaluate equals direct bag evaluation (55 etc.)."""
    database = figure3_bag_database()
    query = section2_query()
    ids = figure5_provenance_ids()
    result = benchmark(lambda: factorized_evaluate(query, database, ids=ids))
    direct = query.evaluate(database)
    assert result.evaluated.equal_to(direct)
    report(
        "Theorem 4.3: Eval_v(q(R-bar)) vs direct bag evaluation",
        [
            f"{t['a']} {t['c']}   Eval_v = {result.evaluated.annotation(t)}   direct = {direct.annotation(t)}"
            for t in sorted(direct.support, key=str)
        ],
    )
