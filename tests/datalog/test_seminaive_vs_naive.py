"""Differential property tests: the semi-naive engine against the naive one.

The naive Kleene engine is the reference implementation (closest to the
paper's Definition 5.5); the semi-naive engine must agree with it
annotation-for-annotation on every program, database and semiring.  This
suite drives both engines with randomized programs and EDB databases from
``tests/strategies.py`` over every registry semiring the engines support,
including the non-idempotent provenance semirings where the semi-naive
engine takes its collect-then-topological path.

``on_divergence="skip"`` is used throughout so the same property holds for
semirings without a top element (``N``, ``N[X]``, circuits): both engines
must then also agree on *which* atoms they skipped.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from strategies import REGISTRY_SEMIRING_NAMES, programs_with_databases

from repro.circuits import to_polynomial
from repro.datalog import (
    Program,
    build_algebraic_system,
    datalog_provenance,
    evaluate_program,
)
from repro.relations.database import Database
from repro.semirings import Polynomial, get_semiring

DIFFERENTIAL_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def _comparable(semiring, value):
    """Map an annotation to a canonical comparable form.

    Circuits are compared by the polynomial they denote: the two engines may
    sum a head's rule contributions in different orders, which yields
    semantically equal but structurally distinct DAGs.
    """
    if semiring.name == "Circ[X]":
        return to_polynomial(value)
    return value


def _assert_engines_agree(semiring, naive, seminaive):
    assert naive.divergent_atoms == seminaive.divergent_atoms
    atoms = set(naive.annotations) | set(seminaive.annotations)
    zero = semiring.zero()
    for atom in atoms:
        left = naive.annotations.get(atom, zero)
        right = seminaive.annotations.get(atom, zero)
        assert _comparable(semiring, left) == _comparable(semiring, right), (
            f"{atom}: naive={semiring.format_value(left)} "
            f"seminaive={semiring.format_value(right)}"
        )


@pytest.mark.parametrize("semiring_name", REGISTRY_SEMIRING_NAMES)
@given(data=st.data())
@DIFFERENTIAL_SETTINGS
def test_engines_agree_on_random_programs(semiring_name, data):
    """Same annotations, same skipped atoms, on every registry semiring."""
    program, database = data.draw(programs_with_databases(semiring_name))
    naive = evaluate_program(program, database, on_divergence="skip")
    seminaive = evaluate_program(
        program, database, on_divergence="skip", engine="seminaive"
    )
    _assert_engines_agree(database.semiring, naive, seminaive)


@given(data=st.data())
@DIFFERENTIAL_SETTINGS
def test_engines_agree_under_top_assignment(data):
    """Under ``on_divergence="top"`` both engines pin the same atoms to ∞."""
    program, database = data.draw(programs_with_databases("natinf"))
    naive = evaluate_program(program, database, on_divergence="top")
    seminaive = evaluate_program(
        program, database, on_divergence="top", engine="seminaive"
    )
    _assert_engines_agree(database.semiring, naive, seminaive)


@given(data=st.data())
@settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_provenance_series_agree(data):
    """The series path computes identical provenance under either engine."""
    program, database = data.draw(programs_with_databases("bag"))
    naive = datalog_provenance(program, database, truncation_degree=3)
    seminaive = datalog_provenance(
        program, database, truncation_degree=3, engine="seminaive"
    )
    assert set(naive.series) == set(seminaive.series)
    for atom in naive.series:
        assert naive.series[atom] == seminaive.series[atom], str(atom)
    assert naive.classification == seminaive.classification


@given(data=st.data())
@settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_circuit_provenance_agrees(data):
    """Circuit provenance from the shared grounding is structurally identical."""
    program, database = data.draw(programs_with_databases("bag"))
    naive = datalog_provenance(program, database, provenance="circuit")
    seminaive = datalog_provenance(
        program, database, provenance="circuit", engine="seminaive"
    )
    assert naive.divergent == seminaive.divergent
    assert set(naive.circuits) == set(seminaive.circuits)
    for atom, circuit in naive.circuits.items():
        # Hash-consing makes structural equality an identity check.
        assert seminaive.circuits[atom] is circuit, str(atom)


@pytest.mark.parametrize("semiring_name", ["bool", "natinf", "tropical"])
@given(data=st.data())
@settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_algebraic_system_worklist_agrees(semiring_name, data):
    """AlgebraicSystem.solve's dependency-aware worklist matches the naive loop."""
    program, database = data.draw(programs_with_databases(semiring_name))
    system = build_algebraic_system(program, database)
    semiring = database.semiring
    naive = system.solve(semiring, on_divergence="skip")
    seminaive = system.solve(semiring, on_divergence="skip", engine="seminaive")
    assert naive == seminaive


def test_rejects_unknown_engine():
    database = Database(get_semiring("bool"))
    database.create("R", ["x", "y"], [("a", "b")])
    program = Program.parse("Q(x, y) :- R(x, y)")
    with pytest.raises(ValueError, match="engine"):
        evaluate_program(program, database, engine="magic")


def test_polynomial_annotations_match_all_trees_shape():
    """Spot check: N[X] fixpoint annotations are genuine polynomials."""
    database = Database(get_semiring("nx"))
    database.create(
        "R",
        ["x", "y"],
        [
            (("a", "b"), Polynomial.var("p")),
            (("b", "c"), Polynomial.var("r")),
        ],
    )
    program = Program.parse("Q(x, y) :- R(x, y)\nQ(x, y) :- R(x, z), Q(z, y)")
    result = evaluate_program(program, database, engine="seminaive")
    relation = result.output_relation(database)
    assert relation[("a", "c")] == Polynomial.var("p") * Polynomial.var("r")
