"""Datalog provenance in N∞[[X]] (Section 6) and Monomial-Coefficient (Figure 9)."""

import pytest

from repro.datalog import (
    GroundAtom,
    ProvenanceClass,
    analyze_finiteness,
    datalog_provenance,
    monomial_coefficient,
)
from repro.relations import Database
from repro.semirings import Monomial, NatInf
from repro.semirings.numeric import INFINITY
from repro.workloads import figure7_database, figure7_edb_ids, figure7_program

CATALAN = [1, 1, 2, 5, 14, 42]


@pytest.fixture(scope="module")
def provenance():
    return datalog_provenance(
        figure7_program(),
        figure7_database(),
        truncation_degree=5,
        edb_ids=figure7_edb_ids(),
    )


class TestFigure7Series:
    def test_finite_provenance_is_exact_polynomial(self, provenance):
        x = provenance.provenance(GroundAtom("Q", ("a", "b")))
        assert x.is_exact
        assert str(x.to_polynomial()).replace("·", "*") in ("m + n*p", "n*p + m")

    def test_v_series_has_catalan_coefficients(self, provenance):
        """v = s + s² + 2s³ + 5s⁴ + 14s⁵ + ... (the paper's footnote 6)."""
        v = provenance.provenance(GroundAtom("Q", ("d", "d")))
        assert not v.is_exact
        for n in range(1, 6):
            assert v.coefficient(Monomial.var("s", n)) == NatInf(CATALAN[n - 1])

    def test_u_series_u_equals_r_times_v_star(self, provenance):
        """u = r·v*: coefficients of r·s^k are 1, 1, 2, 5, 14 (Catalan partial sums of v*)."""
        u = provenance.provenance(GroundAtom("Q", ("b", "d")))
        expected = [1, 1, 2, 5, 14]
        for k in range(0, 5):
            monomial = Monomial({"r": 1, "s": k})
            assert u.coefficient(monomial) == NatInf(expected[k])

    def test_classification(self, provenance):
        assert provenance.classification[GroundAtom("Q", ("a", "b"))] is ProvenanceClass.POLYNOMIAL
        assert (
            provenance.classification[GroundAtom("Q", ("d", "d"))]
            is ProvenanceClass.SERIES_FINITE_COEFFICIENTS
        )


class TestMonomialCoefficient:
    def test_catalan_coefficients_via_figure9_algorithm(self):
        for n in range(1, 6):
            result = monomial_coefficient(
                figure7_program(),
                figure7_database(),
                ("d", "d"),
                Monomial.var("s", n),
                edb_ids=figure7_edb_ids(),
            )
            assert result.coefficient == NatInf(CATALAN[n - 1])

    def test_w_coefficient_of_rnps3(self):
        """The coefficient of r·n·p·s³ in w.

        The paper's prose claims 5, but that value is inconsistent with the
        paper's own closed form w = r(m + np)(v*)² (which gives 14 on the
        reduced six-variable system) and with Definition 5.1 on the full
        instantiation, which also derives Q(c, d) and yields 42.  We assert
        the value our independent hand-derivation confirms (42); see
        EXPERIMENTS.md for the full discussion.
        """
        result = monomial_coefficient(
            figure7_program(),
            figure7_database(),
            ("a", "d"),
            "r*n*p*s^3",
            edb_ids=figure7_edb_ids(),
        )
        assert result.coefficient == NatInf(42)

    def test_zero_coefficient_for_impossible_monomial(self):
        result = monomial_coefficient(
            figure7_program(), figure7_database(), ("a", "b"), "m*s", edb_ids=figure7_edb_ids()
        )
        assert result.coefficient == NatInf(0)

    def test_coefficient_of_underivable_tuple_is_zero(self):
        result = monomial_coefficient(
            figure7_program(), figure7_database(), ("b", "a"), "m", edb_ids=figure7_edb_ids()
        )
        assert result.coefficient == NatInf(0)

    def test_infinite_coefficient_with_unit_rule_cycle(self):
        """P(x) :- T(x), T(x) :- P(x) pumps without consuming leaves => ∞ coefficient."""
        db = Database(figure7_database().semiring)
        db.create("E", ["x"], [(("a",), 1)])
        program = "P(x) :- E(x)\nP(x) :- T(x)\nT(x) :- P(x)"
        result = monomial_coefficient(program, db, ("a",), "t1")
        assert result.coefficient == INFINITY
        assert result.is_infinite

    def test_provenance_object_coefficient_shortcut(self, provenance):
        assert provenance.coefficient(("d", "d"), "s^4") == NatInf(5)


class TestFinitenessClassification:
    def test_theorem_6_5_trichotomy(self):
        db = Database(figure7_database().semiring)
        db.create("E", ["x"], [(("a",), 1)])
        db.create("R", ["x", "y"], [(("a", "a"), 1)])
        program = (
            "P(x) :- E(x)\n"            # polynomial provenance
            "P(x) :- T(x)\n"            # unit-rule cycle with T
            "T(x) :- P(x)\n"
            "S(x) :- R(x, x)\n"          # polynomial
            "S(x) :- S(x), S(x)\n"       # non-unit cycle: proper series, finite coefficients
        )
        report = analyze_finiteness(program, db)
        assert report.provenance_class(GroundAtom("P", ("a",))) is ProvenanceClass.SERIES_INFINITE_COEFFICIENTS
        assert report.provenance_class(GroundAtom("S", ("a",))) is ProvenanceClass.SERIES_FINITE_COEFFICIENTS
        assert not report.has_finite_coefficients(GroundAtom("P", ("a",)))
        assert report.has_finite_coefficients(GroundAtom("S", ("a",)))
        summary = report.summary()
        assert summary["N∞[[X]]"] >= 1 and summary["N[[X]]"] >= 1

    def test_figure7_report(self):
        report = analyze_finiteness(figure7_program(), figure7_database())
        assert report.is_polynomial(GroundAtom("Q", ("a", "b")))
        assert not report.is_polynomial(GroundAtom("Q", ("d", "d")))
        # no unit rules at all, so every series has finite coefficients (Theorem 6.5)
        assert all(
            report.has_finite_coefficients(atom) for atom in report.classification
        )


class TestSeriesCoefficientsAgainstTreeCounting:
    def test_truncated_series_matches_depth_unbounded_tree_counts(self):
        """Cross-check: coefficient of s^n equals the number of derivation trees
        with exactly n leaves, counted by brute force over depth-bounded trees
        (trees with n leaves and no unit rules have depth <= n + 1)."""
        from repro.datalog import enumerate_derivation_trees, ground_program

        provenance = datalog_provenance(
            figure7_program(), figure7_database(), truncation_degree=4, edb_ids=figure7_edb_ids()
        )
        ground = ground_program(figure7_program(), figure7_database())
        atom = GroundAtom("Q", ("d", "d"))
        trees = enumerate_derivation_trees(ground, atom, max_depth=6)
        series = provenance.provenance(atom)
        for n in range(1, 5):
            expected = sum(
                1 for tree in trees if tree.fringe(figure7_edb_ids()) == Monomial.var("s", n)
            )
            assert series.coefficient(Monomial.var("s", n)) == NatInf(expected)
