"""Datalog syntax, parsing and grounding (the instantiation of Theorem 6.5)."""

import pytest

from repro.datalog import GroundAtom, Program, Rule, ground_program
from repro.errors import DatalogError, GroundingError, ParseError
from repro.relations import Database
from repro.semirings import BooleanSemiring, NaturalsSemiring
from repro.workloads import figure7_database, figure7_program


class TestParsing:
    def test_parse_program(self):
        program = Program.parse(
            """
            % transitive closure
            Q(x, y) :- R(x, y)
            Q(x, y) :- Q(x, z), Q(z, y)
            """
        )
        assert len(program) == 2
        assert program.output == "Q"
        assert program.idb_predicates == {"Q"}
        assert program.edb_predicates == {"R"}
        assert program.is_recursive()

    def test_constants_and_comments(self):
        program = Program.parse("P(x) :- E(x, 'a')  % only edges into a")
        assert program.arity("E") == 2
        assert not program.is_recursive()

    def test_unsafe_rule_rejected(self):
        with pytest.raises(DatalogError):
            Rule.parse("Q(x, w) :- R(x, y)")

    def test_empty_body_rejected(self):
        with pytest.raises(ParseError):
            Rule.parse("Q(x) :- ")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(DatalogError):
            Program.parse("Q(x) :- R(x, y)\nQ(x) :- R(x)")

    def test_unknown_output_rejected(self):
        with pytest.raises(DatalogError):
            Program.parse("Q(x) :- R(x, x)", output="Missing")

    def test_unit_rules_detection(self):
        program = Program.parse("P(x) :- E(x)\nP(x) :- T(x)\nT(x) :- P(x)")
        unit_rules = program.unit_rules()
        assert len(unit_rules) == 2  # P:-T and T:-P (P:-E has an EDB body atom)


class TestGrounding:
    def test_figure7_grounding(self):
        ground = ground_program(figure7_program(), figure7_database())
        # derivable Q atoms: ab, ac, cb, bd, dd, ad, cd (the paper's figure omits cd)
        idb = {atom.values for atom in ground.idb_atoms}
        assert idb == {
            ("a", "b"), ("a", "c"), ("c", "b"), ("b", "d"), ("d", "d"), ("a", "d"), ("c", "d"),
        }
        assert len(ground.edb_atoms) == 5

    def test_missing_edb_relation_raises(self):
        db = Database(BooleanSemiring())
        with pytest.raises(GroundingError):
            ground_program(Program.parse("Q(x) :- R(x, x)"), db)

    def test_edb_arity_mismatch_raises(self):
        db = Database(BooleanSemiring())
        db.create("R", ["a"], [("x",)])
        with pytest.raises(GroundingError):
            ground_program(Program.parse("Q(x) :- R(x, x)"), db)

    def test_ground_rule_bodies_are_ordered_tuples(self):
        """The same atom may appear twice in a grounded body (needed for counting)."""
        db = Database(NaturalsSemiring())
        db.create("R", ["x", "y"], [(("a", "a"), 2)])
        ground = ground_program(Program.parse("Q(x, y) :- R(x, z), R(z, y)"), db)
        (rule,) = ground.ground_rules
        assert rule.body == (GroundAtom("R", ("a", "a")), GroundAtom("R", ("a", "a")))

    def test_cycle_analysis_on_figure7(self):
        ground = ground_program(figure7_program(), figure7_database())
        infinite = {atom.values for atom in ground.atoms_with_infinite_derivations()}
        # the self-loop d->d pumps b->d, a->d, c->d as well
        assert infinite == {("d", "d"), ("b", "d"), ("a", "d"), ("c", "d")}
        # no grounded *unit*-rule cycles in transitive closure
        assert ground.atoms_with_unit_rule_cycles() == frozenset()

    def test_unit_rule_cycle_detection(self):
        db = Database(BooleanSemiring())
        db.create("E", ["x"], [("a",)])
        program = Program.parse("P(x) :- E(x)\nP(x) :- T(x)\nT(x) :- P(x)")
        ground = ground_program(program, db)
        cyclic = {(atom.relation, atom.values) for atom in ground.atoms_with_unit_rule_cycles()}
        assert ("P", ("a",)) in cyclic and ("T", ("a",)) in cyclic

    def test_acyclic_program_has_no_infinite_atoms(self):
        db = Database(BooleanSemiring())
        db.create("R", ["x", "y"], [("a", "b"), ("b", "c")])
        ground = ground_program(Program.parse("Q(x, z) :- R(x, y), R(y, z)"), db)
        assert ground.atoms_with_infinite_derivations() == frozenset()
        assert ground.output_atoms() == frozenset({GroundAtom("Q", ("a", "c"))})
