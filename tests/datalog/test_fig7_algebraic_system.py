"""Figure 7(e)/(f) and Theorem 5.6: the algebraic system and its solutions (E7, T3)."""

import pytest

from repro.datalog import GroundAtom, build_algebraic_system
from repro.errors import DatalogError, DivergenceError
from repro.semirings import (
    BooleanSemiring,
    CompletedNaturalsSemiring,
    NatInf,
    NaturalsSemiring,
    Polynomial,
)
from repro.semirings.numeric import INFINITY
from repro.workloads import figure7_database, figure7_edb_ids, figure7_idb_ids, figure7_program


@pytest.fixture
def system():
    return build_algebraic_system(
        figure7_program(),
        figure7_database(),
        idb_ids=figure7_idb_ids(),
        edb_ids=figure7_edb_ids(),
    )


class TestSystemConstruction:
    def test_figure7f_equations(self, system):
        """x = m + y·z, y = n, z = p, u = r + u·v, v = s + v²."""
        assert system.equation("x") == Polynomial.parse("m + y*z")
        assert system.equation("y") == Polynomial.parse("n")
        assert system.equation("z") == Polynomial.parse("p")
        assert system.equation("u") == Polynomial.parse("r + u*v")
        assert system.equation("v") == Polynomial.parse("s + v^2")

    def test_w_equation_includes_the_route_through_cd(self, system):
        """The paper's figure omits Q(c, d); the full instantiation adds x·u + w·v + y·q
        where q is the variable generated for Q(c, d)."""
        q_cd = system.variable_for(GroundAtom("Q", ("c", "d")))
        expected = Polynomial.parse(f"x*u + w*v + y*{q_cd}")
        assert system.equation("w") == expected

    def test_variable_lookup_round_trip(self, system):
        atom = GroundAtom("Q", ("d", "d"))
        assert system.variable_for(atom) == "v"
        assert system.atom_for("v") == atom
        assert system.atom_for("s") == GroundAtom("R", ("d", "d"))
        with pytest.raises(DatalogError):
            system.variable_for(GroundAtom("Q", ("z", "z")))
        with pytest.raises(DatalogError):
            system.equation("nope")

    def test_str_lists_one_equation_per_variable(self, system):
        rendered = str(system)
        assert rendered.count("=") == 7  # six paper variables + Q(c, d)
        assert "v = s + v^2" in rendered


class TestSolutions:
    def test_solution_in_natinf_matches_figure7b(self, system):
        """Theorem 5.6: the system's least solution equals the datalog annotation."""
        solution = system.solve(CompletedNaturalsSemiring())
        assert solution[GroundAtom("Q", ("a", "b"))] == NatInf(8)
        assert solution[GroundAtom("Q", ("a", "c"))] == NatInf(3)
        assert solution[GroundAtom("Q", ("c", "b"))] == NatInf(2)
        assert solution[GroundAtom("Q", ("b", "d"))] == INFINITY
        assert solution[GroundAtom("Q", ("d", "d"))] == INFINITY
        assert solution[GroundAtom("Q", ("a", "d"))] == INFINITY

    def test_solution_with_custom_valuation(self, system):
        """Replacing the EDB valuation changes the solution accordingly."""
        solution = system.solve(
            CompletedNaturalsSemiring(),
            {"m": 1, "n": 1, "p": 1, "r": 0, "s": 0},
        )
        assert solution[GroundAtom("Q", ("a", "b"))] == NatInf(2)   # 1 + 1·1
        assert solution[GroundAtom("Q", ("b", "d"))] == NatInf(0)   # r = 0 kills u

    def test_solution_in_boolean(self, system):
        valuation = {name: True for name in "mnprs"}
        solution = system.solve(BooleanSemiring(), valuation)
        assert solution[GroundAtom("Q", ("a", "d"))] is True
        assert all(value is True for value in solution.values())

    def test_divergence_in_plain_naturals_raises(self, system):
        with pytest.raises(DivergenceError):
            system.solve(NaturalsSemiring())

    def test_solve_output_filters_to_output_predicate(self, system):
        output = system.solve_output(BooleanSemiring(), {name: True for name in "mnprs"})
        assert all(atom.relation == "Q" for atom in output)
        assert len(output) == 7

    def test_agreement_with_fixpoint_engine(self, system):
        """System solution == direct fixpoint evaluation (two implementations of Thm 5.6)."""
        from repro.datalog import evaluate_program

        direct = evaluate_program(figure7_program(), figure7_database())
        solution = system.solve(CompletedNaturalsSemiring())
        for atom, value in solution.items():
            assert direct.annotations[atom] == value
