"""Divergence behavior of the semi-naive engine, mirrored against the naive one.

Covers the full ``on_divergence`` matrix on a cyclic instance -- raising
:class:`DivergenceError` when the semiring cannot absorb an infinite sum,
assigning the top element when it can (``N∞``, Figure 7(b)), and skipping
the divergent atoms while keeping exact values -- plus the round-count
regression: on an acyclic chain the semi-naive engine solves the program in
a single topological pass where the naive engine Kleene-iterates once per
path length.
"""

from __future__ import annotations

import pytest

from repro.datalog import (
    GroundAtom,
    datalog_circuit_provenance,
    evaluate_program,
    Program,
)
from repro.errors import DivergenceError
from repro.relations.database import Database
from repro.semirings import (
    INFINITY,
    CompletedNaturalsSemiring,
    NaturalsSemiring,
    ProvenancePolynomialSemiring,
)
from repro.workloads import chain_graph_database, transitive_closure_program

TC = transitive_closure_program()


def _cyclic_database(semiring):
    """a -> b -> a plus an off-ramp b -> c; every atom reaches the cycle."""
    database = Database(semiring)
    database.create("R", ["x", "y"], [("a", "b"), ("b", "a"), ("b", "c")])
    return database


@pytest.mark.parametrize("engine", ["naive", "seminaive"])
def test_divergence_error_without_top(engine):
    """N has no top element: a cyclic program must raise under 'top' and 'error'."""
    database = _cyclic_database(NaturalsSemiring())
    with pytest.raises(DivergenceError):
        evaluate_program(TC, database, engine=engine)  # on_divergence="top"
    with pytest.raises(DivergenceError):
        evaluate_program(TC, database, engine=engine, on_divergence="error")


@pytest.mark.parametrize("engine", ["naive", "seminaive"])
def test_divergence_error_in_polynomials(engine):
    """N[X] has no top either; 'error' must also raise for provenance."""
    semiring = ProvenancePolynomialSemiring()
    database = _cyclic_database(semiring).map_annotations(
        lambda _: semiring.one(), semiring
    )
    with pytest.raises(DivergenceError):
        evaluate_program(TC, database, engine=engine, on_divergence="error")


def test_skip_drops_the_same_atoms_in_both_engines():
    database = _cyclic_database(NaturalsSemiring())
    naive = evaluate_program(TC, database, on_divergence="skip")
    seminaive = evaluate_program(
        TC, database, on_divergence="skip", engine="seminaive"
    )
    assert naive.divergent_atoms == seminaive.divergent_atoms
    assert naive.annotations == seminaive.annotations
    # Every atom on/after the a<->b cycle is gone; nothing else was derivable.
    assert seminaive.divergent_atoms == frozenset(seminaive.ground.idb_atoms)
    assert seminaive.annotations == {}


def test_natinf_top_assignment_matches_figure_7b_semantics():
    """Under N∞ the divergent atoms must get ∞ in both engines."""
    database = _cyclic_database(CompletedNaturalsSemiring())
    naive = evaluate_program(TC, database)
    seminaive = evaluate_program(TC, database, engine="seminaive")
    assert naive.annotations == seminaive.annotations
    assert seminaive.annotations[GroundAtom("Q", ("a", "a"))] == INFINITY
    assert seminaive.annotations[GroundAtom("Q", ("a", "c"))] == INFINITY
    assert seminaive.divergent_atoms == naive.divergent_atoms


def test_circuit_provenance_divergence_matrix():
    """The circuit path forwards on_divergence to the semi-naive solver."""
    bag = NaturalsSemiring()
    database = _cyclic_database(bag)
    skip = datalog_circuit_provenance(TC, database, engine="seminaive")
    assert skip.circuits == {}
    assert skip.divergent == datalog_circuit_provenance(TC, database).divergent
    with pytest.raises(DivergenceError):
        datalog_circuit_provenance(
            TC, database, engine="seminaive", on_divergence="error"
        )


def test_seminaive_round_count_beats_naive_on_chain():
    """Regression: on a chain the semi-naive engine needs strictly fewer rounds.

    Under ``N`` the chain's grounding is acyclic, so the semi-naive engine
    finishes in one topological pass while the naive engine performs one
    Kleene round per path length (plus one to detect stability).
    """
    length = 12
    database = chain_graph_database(NaturalsSemiring(), length=length)
    naive = evaluate_program(TC, database)
    seminaive = evaluate_program(TC, database, engine="seminaive")
    assert naive.annotations == seminaive.annotations
    assert seminaive.iterations < naive.iterations
    assert seminaive.iterations == 1
    assert naive.iterations > length / 2


def test_invalid_on_divergence_is_rejected():
    database = _cyclic_database(NaturalsSemiring())
    with pytest.raises(ValueError, match="on_divergence"):
        evaluate_program(TC, database, engine="seminaive", on_divergence="explode")


def test_unsolvable_unless_skip_message_mentions_remedy():
    database = _cyclic_database(NaturalsSemiring())
    with pytest.raises(DivergenceError, match="on_divergence='skip'"):
        evaluate_program(TC, database, engine="seminaive")
