"""Datalog fixpoint evaluation over ω-continuous semirings (Section 5)."""

import math

import pytest

from repro.datalog import GroundAtom, Program, evaluate, evaluate_program
from repro.errors import DivergenceError
from repro.relations import Database, Tup
from repro.semirings import (
    BooleanSemiring,
    CompletedNaturalsSemiring,
    FuzzySemiring,
    NatInf,
    NaturalsSemiring,
    TropicalSemiring,
    ViterbiSemiring,
)
from repro.semirings.numeric import INFINITY
from repro.workloads import (
    chain_graph_database,
    figure6_database,
    figure6_program,
    figure7_database,
    figure7_program,
    transitive_closure_program,
)


class TestFigure6:
    def test_conjunctive_query_bag_semantics(self):
        """Figure 6(c): 4, 18, 16 -- matches the RA+ sum-of-products."""
        result = evaluate(figure6_program(), figure6_database())
        assert result.annotation(("a", "a")) == 4
        assert result.annotation(("a", "b")) == 18
        assert result.annotation(("b", "b")) == 16


class TestFigure7:
    def test_transitive_closure_multiplicities(self):
        """Figure 7(b): 8, 3, 2 finite and ∞ for the tuples reachable via the loop."""
        result = evaluate(figure7_program(), figure7_database())
        assert result.annotation(("a", "b")) == NatInf(8)
        assert result.annotation(("a", "c")) == NatInf(3)
        assert result.annotation(("c", "b")) == NatInf(2)
        assert result.annotation(("b", "d")) == INFINITY
        assert result.annotation(("d", "d")) == INFINITY
        assert result.annotation(("a", "d")) == INFINITY
        # our instantiation also derives (c, d), omitted from the paper's figure
        assert result.annotation(("c", "d")) == INFINITY

    def test_divergence_error_mode(self):
        with pytest.raises(DivergenceError):
            evaluate(figure7_program(), figure7_database(), on_divergence="error")

    def test_plain_naturals_cannot_express_divergence(self):
        bag_db = figure7_database(NaturalsSemiring())
        with pytest.raises(DivergenceError):
            evaluate(figure7_program(), bag_db)

    def test_boolean_sanity_check(self):
        """Proposition 5.4: datalog over B computes the classical answer."""
        result = evaluate(figure7_program(), figure7_database(BooleanSemiring()))
        expected = {("a", "b"), ("a", "c"), ("c", "b"), ("b", "d"), ("d", "d"), ("a", "d"), ("c", "d")}
        assert {tuple(t.values_for(("x", "y"))) for t in result.support} == expected
        assert all(v is True for v in result.annotations())


class TestOtherSemirings:
    def test_tropical_shortest_paths(self):
        """Transitive closure over (min, +) computes shortest distances."""
        tropical = TropicalSemiring()
        db = Database(tropical)
        db.create(
            "R",
            ["x", "y"],
            [(("a", "b"), 1.0), (("b", "c"), 2.0), (("a", "c"), 10.0), (("c", "a"), 1.0)],
        )
        result = evaluate(transitive_closure_program(), db)
        assert result.annotation(("a", "c")) == 3.0      # a->b->c beats the direct 10
        assert result.annotation(("a", "a")) == 4.0      # around the cycle
        assert result.annotation(("b", "a")) == 3.0

    def test_fuzzy_and_viterbi_converge_on_cyclic_graphs(self):
        for semiring in (FuzzySemiring(), ViterbiSemiring()):
            db = Database(semiring)
            db.create(
                "R",
                ["x", "y"],
                [(("a", "b"), 0.5), (("b", "a"), 0.5), (("b", "c"), 0.25)],
            )
            result = evaluate(transitive_closure_program(), db)
            assert 0 < result.annotation(("a", "c")) <= 0.25
            assert len(result) > 0

    def test_chain_graph_bag_counts_paths(self):
        """On an acyclic chain each closure tuple has exactly one derivation path
        but several derivation trees under the quadratic rule; the linear rule
        gives exactly one tree per path."""
        natinf = CompletedNaturalsSemiring()
        db = chain_graph_database(natinf, length=6).map_annotations(lambda _: NatInf(1), natinf)
        quadratic = evaluate(transitive_closure_program(), db)
        linear = evaluate(transitive_closure_program(linear=True), db)
        # supports agree
        assert quadratic.support == linear.support
        # linear recursion: every pair has exactly one derivation tree
        assert all(v == NatInf(1) for v in linear.annotations())
        # quadratic recursion over-counts long paths (Catalan-style re-bracketings)
        assert quadratic.annotation(("n0", "n5")).finite_value() > 1


class TestResultObject:
    def test_all_idb_relations_materializable(self):
        program = Program.parse("Q(x, y) :- R(x, y)\nP(x) :- Q(x, x)", output="P")
        db = Database(BooleanSemiring())
        db.create("R", ["x", "y"], [("a", "a"), ("a", "b")])
        result = evaluate_program(program, db)
        q_rel = result.relation("Q", db)
        p_rel = result.output_relation(db)
        assert len(q_rel) == 2
        assert len(p_rel) == 1
        assert result.divergent_atoms == frozenset()
        assert result.iterations >= 1

    def test_nonrecursive_program_over_plain_naturals_is_fine(self):
        db = figure6_database()
        result = evaluate_program(figure6_program(), db)
        assert result.annotations[GroundAtom("Q", ("a", "b"))] == 18
