"""Algorithm All-Trees (Figure 8, E8) and derivation-tree enumeration."""

import pytest

from repro.datalog import (
    GroundAtom,
    all_trees,
    bag_multiplicities,
    count_derivation_trees,
    enumerate_derivation_trees,
    ground_program,
)
from repro.errors import DatalogError
from repro.relations import Database
from repro.semirings import CompletedNaturalsSemiring, NatInf, Polynomial
from repro.semirings.numeric import INFINITY
from repro.workloads import (
    chain_graph_database,
    figure7_database,
    figure7_edb_ids,
    figure7_program,
)


class TestAllTreesOnFigure7:
    @pytest.fixture
    def result(self):
        return all_trees(figure7_program(), figure7_database(), edb_ids=figure7_edb_ids())

    def test_finite_and_infinite_classification(self, result):
        finite = {atom.values for atom in result.polynomials}
        infinite = {atom.values for atom in result.infinite}
        assert finite == {("a", "b"), ("a", "c"), ("c", "b")}
        assert infinite == {("b", "d"), ("d", "d"), ("a", "d"), ("c", "d")}

    def test_finite_polynomials(self, result):
        assert result.provenance(GroundAtom("Q", ("a", "b"))) == Polynomial.parse("m + n*p")
        assert result.provenance(GroundAtom("Q", ("a", "c"))) == Polynomial.parse("n")
        assert result.provenance(GroundAtom("Q", ("c", "b"))) == Polynomial.parse("p")
        assert result.provenance(GroundAtom("Q", ("d", "d"))) is None

    def test_evaluation_with_top_for_infinite(self, result):
        natinf = CompletedNaturalsSemiring()
        values = result.evaluate(
            natinf, {"m": 2, "n": 3, "p": 2, "r": 1, "s": 1}
        )
        assert values[GroundAtom("Q", ("a", "b"))] == NatInf(8)
        assert values[GroundAtom("Q", ("a", "d"))] == INFINITY

    def test_bag_multiplicities_shortcut(self):
        multiplicities = bag_multiplicities(figure7_program(), figure7_database())
        assert multiplicities[GroundAtom("Q", ("a", "b"))] == NatInf(8)
        assert multiplicities[GroundAtom("Q", ("d", "d"))] == INFINITY

    def test_unknown_atom_raises(self, result):
        with pytest.raises(DatalogError):
            result.provenance(GroundAtom("Q", ("nope", "nope")))

    def test_output_provenance_maps_infinite_to_none(self, result):
        output = result.output_provenance()
        assert output[GroundAtom("Q", ("a", "b"))] == Polynomial.parse("m + n*p")
        assert output[GroundAtom("Q", ("a", "d"))] is None


class TestAgainstBruteForceEnumeration:
    def test_polynomial_matches_enumerated_trees_on_chain(self):
        """On an acyclic instance the All-Trees polynomial equals the sum over
        explicitly enumerated derivation trees (Definition 5.1 verbatim)."""
        natinf = CompletedNaturalsSemiring()
        db = chain_graph_database(natinf, length=5)
        program = figure7_program()
        result = all_trees(program, db)
        ground = result.ground
        for atom, polynomial in result.polynomials.items():
            trees = enumerate_derivation_trees(ground, atom)
            brute = Polynomial.zero()
            for tree in trees:
                brute = brute + Polynomial.monomial(tree.fringe(result.edb_ids))
            assert polynomial == brute

    def test_enumeration_refuses_infinite_atoms_without_depth_bound(self):
        ground = ground_program(figure7_program(), figure7_database())
        with pytest.raises(DatalogError):
            enumerate_derivation_trees(ground, GroundAtom("Q", ("d", "d")))

    def test_depth_bounded_enumeration_and_counting_agree(self):
        ground = ground_program(figure7_program(), figure7_database())
        atom = GroundAtom("Q", ("d", "d"))
        for depth in (2, 3, 4, 5):
            trees = enumerate_derivation_trees(ground, atom, max_depth=depth)
            assert len(trees) == count_derivation_trees(ground, atom, max_depth=depth)

    def test_tree_structure_helpers(self):
        ground = ground_program(figure7_program(), figure7_database())
        trees = enumerate_derivation_trees(ground, GroundAtom("Q", ("a", "b")))
        assert len(trees) == 2  # direct edge, and via a->c->b
        for tree in trees:
            assert tree.depth() >= 2
            assert tree.size() >= 2
            leaves = list(tree.leaves())
            assert all(leaf.relation == "R" for leaf in leaves)
