"""UCQ -> datalog translation helpers and derivation-tree utilities."""

import pytest

from repro.algebra import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.datalog import (
    GroundAtom,
    cq_to_program,
    enumerate_derivation_trees,
    ground_program,
    ucq_to_program,
)
from repro.relations import Database
from repro.semirings import BooleanSemiring, Monomial, NaturalsSemiring
from repro.workloads import figure6_database


def test_cq_to_program_roundtrip():
    cq = ConjunctiveQuery.parse("Ans(x, y) :- R(x, z), S(z, y)")
    program = cq_to_program(cq)
    assert program.output == "Ans"
    assert program.edb_predicates == {"R", "S"}
    assert len(program) == 1


def test_ucq_to_program_one_rule_per_disjunct():
    ucq = UnionOfConjunctiveQueries.parse(
        "Q(x, y) :- R(x, y); Q(x, y) :- R(x, z), R(z, y)"
    )
    program = ucq_to_program(ucq, output="Path")
    assert program.output == "Path"
    assert len(program) == 2
    # evaluation agrees with the UCQ on a bag database
    from repro.datalog import evaluate

    db = figure6_database()
    via_program = evaluate(program, db)
    via_ucq = ucq.evaluate(db)
    assert {t.values_for(tuple(via_program.schema.attributes)) for t in via_program.support} == {
        t.values_for(("c1", "c2")) for t in via_ucq.support
    }


def test_ucq_to_program_accepts_plain_sequences():
    cqs = [ConjunctiveQuery.parse("Q(x) :- R(x, x)")]
    program = ucq_to_program(cqs)
    assert program.output == "Q"


class TestDerivationTrees:
    def setup_method(self):
        self.db = Database(NaturalsSemiring())
        self.db.create("R", ["x", "y"], [(("a", "b"), 1), (("b", "c"), 1), (("a", "c"), 1)])
        self.program = "Q(x, y) :- R(x, y)\nQ(x, y) :- Q(x, z), Q(z, y)"
        self.ground = ground_program(
            __import__("repro.datalog.syntax", fromlist=["Program"]).Program.parse(self.program),
            self.db,
        )

    def test_two_derivations_for_ac(self):
        trees = enumerate_derivation_trees(self.ground, GroundAtom("Q", ("a", "c")))
        assert len(trees) == 2
        fringes = {str(t.fringe({atom: f"e{i}" for i, atom in enumerate(sorted(self.ground.edb_atoms, key=str), 1)})) for t in trees}
        assert len(fringes) == 2  # direct edge vs. two-hop path

    def test_max_trees_budget(self):
        trees = enumerate_derivation_trees(
            self.ground, GroundAtom("Q", ("a", "c")), max_trees=1
        )
        assert len(trees) == 1

    def test_underivable_atom_yields_no_trees(self):
        assert enumerate_derivation_trees(self.ground, GroundAtom("Q", ("c", "a"))) == []

    def test_leaf_product_matches_bag_annotation(self):
        boolean_db = Database(BooleanSemiring())
        boolean_db.create("R", ["x", "y"], [("a", "b"), ("b", "c")])
        from repro.datalog import Program, evaluate

        result = evaluate(Program.parse(self.program), boolean_db)
        assert result.annotation(("a", "c")) is True

    def test_fringe_is_a_monomial_over_leaf_ids(self):
        trees = enumerate_derivation_trees(self.ground, GroundAtom("Q", ("a", "c")))
        ids = {atom: f"t{i}" for i, atom in enumerate(sorted(self.ground.edb_atoms, key=str), 1)}
        for tree in trees:
            fringe = tree.fringe(ids)
            assert isinstance(fringe, Monomial)
            assert fringe.degree == len(list(tree.leaves()))
