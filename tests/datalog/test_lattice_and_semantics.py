"""Section 8 (datalog on finite distributive lattices), Theorem 6.4 factorization,
Propositions 5.3/6.2 (RA+/datalog translation agreement) and Proposition 5.7."""

import pytest

from repro.algebra import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.datalog import (
    GroundAtom,
    evaluate,
    evaluate_on_lattice,
    lattice_condition_provenance,
    ucq_to_program,
)
from repro.errors import DatalogError
from repro.relations import Database, Tup
from repro.semirings import (
    BooleanSemiring,
    CompletedNaturalsSemiring,
    FuzzySemiring,
    NatInf,
    PosBoolSemiring,
)
from repro.semirings.posbool import BoolExpr
from repro.workloads import (
    figure6_database,
    figure7_database,
    figure7_edb_ids,
    figure7_program,
    transitive_closure_program,
)


class TestLatticeEvaluation:
    def test_boolean_sanity_check(self):
        """Section 8 sanity check: over B every derivable tuple gets true."""
        result = evaluate_on_lattice(figure7_program(), figure7_database(BooleanSemiring()))
        assert len(result) == 7
        assert all(value is True for value in result.annotations())

    def test_agrees_with_generic_fixpoint_on_lattices(self):
        """The minimal-fringe evaluation and the direct fixpoint must coincide."""
        for semiring in (BooleanSemiring(), FuzzySemiring()):
            db = figure7_database(semiring)
            if semiring.name == "Fuzzy":
                # give the edges distinct membership degrees
                relation = db["R"]
                for index, tup in enumerate(sorted(relation.support, key=str)):
                    relation.set(tup, [1.0, 0.75, 0.5, 0.25, 0.125][index])
            via_lattice = evaluate_on_lattice(figure7_program(), db)
            via_fixpoint = evaluate(figure7_program(), db)
            assert via_lattice.equal_to(via_fixpoint)

    def test_datalog_on_ctables_conditions(self):
        """'Datalog on boolean c-tables' -- new for incomplete databases (Section 8)."""
        posbool = PosBoolSemiring()
        db = Database(posbool)
        db.create(
            "R",
            ["x", "y"],
            [
                (("a", "b"), BoolExpr.var("e1")),
                (("b", "c"), BoolExpr.var("e2")),
                (("c", "a"), BoolExpr.var("e3")),
            ],
        )
        result = evaluate_on_lattice(transitive_closure_program(), db)
        assert result.annotation(("a", "c")) == BoolExpr.var("e1") & BoolExpr.var("e2")
        # going around the cycle collapses by absorption to the single loop condition
        assert result.annotation(("a", "a")) == (
            BoolExpr.var("e1") & BoolExpr.var("e2") & BoolExpr.var("e3")
        )

    def test_condition_provenance_is_reusable_across_lattices(self):
        provenance = lattice_condition_provenance(figure7_program(), figure7_database())
        conditions = provenance.conditions
        assert GroundAtom("Q", ("a", "d")) in conditions
        # specialize to B: everything true
        valuation = {name: True for name in provenance.edb_ids.values()}
        values = provenance.evaluate(BooleanSemiring(), valuation)
        assert all(v is True for v in values.values())

    def test_non_lattice_semiring_rejected(self):
        with pytest.raises(DatalogError):
            evaluate_on_lattice(figure7_program(), figure7_database())


class TestTranslationAgreement:
    def test_proposition_5_3_nonrecursive_agreement(self):
        """A UCQ and its datalog translation agree on every K-database."""
        ucq = UnionOfConjunctiveQueries(
            [
                ConjunctiveQuery.parse("Q(x, y) :- R(x, y)"),
                ConjunctiveQuery.parse("Q(x, y) :- R(x, z), R(z, y)"),
            ]
        )
        program = ucq_to_program(ucq)
        for database in (figure6_database(), figure7_database(BooleanSemiring())):
            via_ra = ucq.evaluate(database)
            via_datalog = evaluate(program, database)
            # align schemas (both use c1, c2 here)
            assert {
                (t.values_for(("c1", "c2")), via_ra.annotation(t)) for t in via_ra.support
            } == {
                (t.values_for(tuple(via_datalog.schema.attributes)), via_datalog.annotation(t))
                for t in via_datalog.support
            }

    def test_proposition_6_2_provenance_agreement(self):
        """Non-recursive datalog provenance = RA+ provenance (modulo embedding)."""
        from repro.algebra import provenance_of_query, Q
        from repro.datalog import all_trees
        from repro.workloads import figure3_bag_database, figure5_provenance_ids, section2_query

        database = figure3_bag_database()
        ra_provenance, tagged = provenance_of_query(
            section2_query(), database, ids=figure5_provenance_ids()
        )
        # the same query as a UCQ / single-IDB program over the binary projections
        ucq = UnionOfConjunctiveQueries(
            [
                ConjunctiveQuery.parse("Q(x, z) :- R(x, y, w1), R(v1, y, z)"),
                ConjunctiveQuery.parse("Q(x, z) :- R(x, y1, w), R(v1, y2, w), R(v2, y3, z)"),
            ]
        )
        # note: expressing the exact Section 2 query as a UCQ over the ternary
        # relation requires care; here we simply check that datalog provenance of a
        # UCQ equals its RA+ provenance on the simpler Figure 6 query instead.
        cq = ConjunctiveQuery.parse("Q(x, y) :- R(x, z), R(z, y)")
        program = ucq_to_program(UnionOfConjunctiveQueries([cq]))
        db6 = figure6_database()
        result = all_trees(program, db6)
        # RA+ provenance of the same conjunctive query over the tagged database
        from repro.relations import abstractly_tag_database

        tagged6 = abstractly_tag_database(db6)
        ra6 = cq.evaluate(tagged6.database)
        for atom, polynomial in result.polynomials.items():
            if atom.relation != "Q":
                continue
            tup = Tup.from_values(("c1", "c2"), atom.values)
            ra_poly = ra6.annotation(tup)
            # rename All-Trees' tuple ids (t1, t2, ...) to the tagging's ids
            renaming = {
                result.edb_ids[a]: tagged6.variable_for("R", Tup.from_values(("x", "y"), a.values))
                for a in result.ground.edb_atoms
            }
            assert polynomial.rename(renaming) == ra_poly


class TestProposition57:
    def test_omega_continuous_homomorphism_commutes_with_datalog(self):
        """h: N∞ -> B (support map) commutes with the datalog query of Figure 7."""
        natinf_result = evaluate(figure7_program(), figure7_database())
        support_mapped = natinf_result.map_annotations(
            lambda v: NatInf.of(v) > NatInf(0) if not isinstance(v, bool) else v,
            BooleanSemiring(),
        )
        boolean_result = evaluate(figure7_program(), figure7_database(BooleanSemiring()))
        assert support_mapped.equal_to(boolean_result)
