"""Conjunctive queries and UCQs: parsing, K-semantics, canonical databases."""

import pytest

from repro.algebra import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.errors import ParseError, QueryError
from repro.relations import Database, Tup
from repro.semirings import BooleanSemiring, NaturalsSemiring, PosBoolSemiring
from repro.workloads import figure6_database


def test_parse_and_render():
    cq = ConjunctiveQuery.parse("Q(x, y) :- R(x, z), R(z, y)")
    assert cq.name == "Q"
    assert len(cq.body) == 2
    assert cq.relations == {"R"}
    assert "R(x, z)" in cq.to_datalog_rule()


def test_unsafe_head_rejected():
    with pytest.raises(QueryError):
        ConjunctiveQuery.parse("Q(x, w) :- R(x, y)")


def test_parse_errors():
    with pytest.raises(ParseError):
        ConjunctiveQuery.parse("Q(x, y) R(x, y)")
    with pytest.raises(ParseError):
        ConjunctiveQuery.parse("Q(x) :- ")


def test_figure6_bag_evaluation():
    """Figure 6(c): Q(a,a)=4, Q(a,b)=2*3+3*4=18, Q(b,b)=16."""
    cq = ConjunctiveQuery.parse("Q(x, y) :- R(x, z), R(z, y)")
    result = cq.evaluate(figure6_database())
    assert result.annotation(Tup(c1="a", c2="a")) == 4
    assert result.annotation(Tup(c1="a", c2="b")) == 18
    assert result.annotation(Tup(c1="b", c2="b")) == 16
    assert len(result) == 3


def test_constants_in_body_and_head():
    db = Database(NaturalsSemiring())
    db.create("R", ["x", "y"], [(("a", "b"), 2), (("a", "c"), 3)])
    cq = ConjunctiveQuery.parse("Q(y) :- R('a', y)")
    result = cq.evaluate(db)
    assert result.annotation(("b",)) == 2
    assert result.annotation(("c",)) == 3


def test_evaluation_in_posbool():
    db = Database(PosBoolSemiring())
    db.create("R", ["x", "y"], [(("a", "b"), PosBoolSemiring().coerce("e1")), (("b", "c"), PosBoolSemiring().coerce("e2"))])
    cq = ConjunctiveQuery.parse("Q(x, z) :- R(x, y), R(y, z)")
    result = cq.evaluate(db)
    condition = result.annotation(("a", "c"))
    assert str(condition) == "e1 ∧ e2"


def test_canonical_database_and_head():
    cq = ConjunctiveQuery.parse("Q(x) :- R(x, y), S(y, 'k')")
    database, head = cq.canonical_database()
    assert set(database.names()) == {"R", "S"}
    assert len(database["R"]) == 1 and len(database["S"]) == 1
    assert head["c1"] == "_x"
    # the query evaluated on its own canonical database returns the frozen head
    result = cq.evaluate(database.to_semiring(BooleanSemiring(), lambda c: True))
    assert head in result.support


def test_ucq_union_adds_annotations():
    db = figure6_database()
    ucq = UnionOfConjunctiveQueries.parse(
        "Q(x, y) :- R(x, y); Q(x, y) :- R(x, z), R(z, y)"
    )
    result = ucq.evaluate(db)
    # R(a,b)=3 plus the 18 two-step derivations
    assert result.annotation(Tup(c1="a", c2="b")) == 21
    assert len(ucq) == 2
    assert ucq.relations == {"R"}


def test_ucq_requires_consistent_heads():
    with pytest.raises(QueryError):
        UnionOfConjunctiveQueries.parse("Q(x, y) :- R(x, y); Q(x) :- R(x, x)")


def test_homomorphism_detection():
    more_specific = ConjunctiveQuery.parse("Q(x) :- R(x, x)")
    more_general = ConjunctiveQuery.parse("Q(x) :- R(x, y)")
    # general -> specific homomorphism exists (map y to x)
    assert more_general.find_homomorphism(more_specific) is not None
    # specific -> general does not
    assert more_specific.find_homomorphism(more_general) is None
