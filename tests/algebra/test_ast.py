"""The query AST, fluent builder and evaluation against databases."""

import pytest

from repro.algebra import Q
from repro.algebra.ast import EmptyRelation
from repro.errors import QueryError
from repro.relations import Database
from repro.semirings import BooleanSemiring, NaturalsSemiring
from repro.workloads import figure3_bag_database, section2_query


def test_relation_ref_and_names():
    q = section2_query()
    assert q.relation_names() == frozenset({"R"})
    assert "π" in str(q)


def test_empty_relation_evaluates_to_empty():
    db = Database(BooleanSemiring())
    result = EmptyRelation(["a"]).evaluate(db)
    assert len(result) == 0


def test_projection_requires_attributes():
    with pytest.raises(QueryError):
        Q.relation("R").project()


def test_where_eq_and_where_attrs_equal():
    db = Database(NaturalsSemiring())
    db.create("R", ["a", "b"], [(("x", "x"), 2), (("x", "y"), 3)])
    same = Q.relation("R").where_attrs_equal("a", "b").evaluate(db)
    assert len(same) == 1 and same.annotation(("x", "x")) == 2
    just_x = Q.relation("R").where_eq("b", "y").evaluate(db)
    assert just_x.annotation(("x", "y")) == 3


def test_rename_then_join_self():
    """Self-join via renaming: paths of length 2 with multiplicities."""
    db = Database(NaturalsSemiring())
    db.create("E", ["src", "dst"], [(("a", "b"), 2), (("b", "c"), 3)])
    left = Q.relation("E").rename({"dst": "mid"})
    right = Q.relation("E").rename({"src": "mid"})
    two_hop = left.join(right).project("src", "dst")
    result = two_hop.evaluate(db)
    assert result.annotation(("a", "c")) == 6


def test_query_is_reusable_across_semirings():
    """The same AST evaluates in any semiring (the point of K-relations)."""
    q = section2_query()
    bag_result = q.evaluate(figure3_bag_database())
    boolean_db = figure3_bag_database().map_annotations(lambda n: n > 0, BooleanSemiring())
    bool_result = q.evaluate(boolean_db)
    assert {t for t in bag_result.support} == {t for t in bool_result.support}


def test_query_call_syntax():
    db = figure3_bag_database()
    q = section2_query()
    assert q(db).equal_to(q.evaluate(db))


def test_str_of_composite_query_mentions_operators():
    q = section2_query()
    rendered = str(q)
    assert "∪" in rendered and "⋈" in rendered and "π" in rendered
