"""Proposition 3.4: the RA identities hold over every commutative semiring
(and the bag-sensitive ones -- idempotence -- deliberately do not)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import (
    check_selection_projection_identities,
    check_union_join_identities,
    operators,
    predicates,
)
from repro.relations import KRelation
from repro.semirings import NaturalsSemiring
from repro.workloads import random_relation

from tests.conftest import ALL_SEMIRINGS


def _three_relations(semiring, seed):
    return [
        random_relation(
            semiring,
            ["a", "b"],
            num_tuples=4,
            domain_size=3,
            seed=seed + offset,
            annotation_offset=offset * 10,
        )
        for offset in range(3)
    ]


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_union_join_identities_hold(semiring, seed):
    r1, r2, r3 = _three_relations(semiring, seed)
    report = check_union_join_identities(r1, r2, r3)
    assert report.ok, report.violations


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
@pytest.mark.parametrize("seed", [0, 3])
def test_selection_projection_identities_hold(semiring, seed):
    r1, r2, _ = _three_relations(semiring, seed)
    report = check_selection_projection_identities(
        r1,
        r2,
        predicates=[
            predicates.attr_eq_const("a", "v0"),
            predicates.attr_eq("a", "b"),
        ],
    )
    assert report.ok, report.violations


def test_union_idempotence_fails_for_bags():
    """'Glaringly absent' from Proposition 3.4: R ∪ R != R under bag semantics."""
    bag = NaturalsSemiring()
    r = KRelation(bag, ["a"], [(("x",), 2)])
    doubled = operators.union(r, r)
    assert not doubled.equal_to(r)
    assert doubled.annotation(("x",)) == 4


def test_self_join_idempotence_fails_for_bags():
    bag = NaturalsSemiring()
    r = KRelation(bag, ["a"], [(("x",), 2)])
    squared = operators.join(r, r)
    assert squared.annotation(("x",)) == 4


class TestPredicateMentionsOnly:
    """The attr-scoping check behind the σ/π commutation identity.

    Structured predicates are now scoped *exactly* from their attribute
    sets; the old probe-the-support heuristic remains only as a fallback
    for opaque callables.  These tests cover the cases the heuristic got
    wrong or could not see.
    """

    @staticmethod
    def _mentions_only(predicate, attributes, relation):
        from repro.algebra.identities import _predicate_mentions_only

        return _predicate_mentions_only(predicate, attributes, relation)

    def test_exact_scoping_for_structured_predicates(self):
        r = KRelation(NaturalsSemiring(), ["a", "b"], [(("x", "y"), 1)])
        assert self._mentions_only(predicates.attr_eq_const("a", "x"), ["a"], r)
        assert not self._mentions_only(predicates.attr_eq("a", "b"), ["a"], r)
        assert self._mentions_only(predicates.attr_eq("a", "b"), ["a", "b"], r)

    def test_short_circuiting_disjunction_no_longer_fools_the_check(self):
        # any() returns before touching "b", so probing the projected tuple
        # never raised and the heuristic wrongly said "mentions only {a}".
        tricky = predicates.disjunction(
            predicates.true, predicates.attr_eq_const("b", "y")
        )
        r = KRelation(NaturalsSemiring(), ["a", "b"], [(("x", "y"), 1)])
        assert not self._mentions_only(tricky, ["a"], r)

    def test_empty_support_no_longer_vacuously_passes(self):
        # With nothing to probe, the heuristic answered True for *any*
        # predicate; the structural answer does not depend on the data.
        empty = KRelation(NaturalsSemiring(), ["a", "b"])
        assert not self._mentions_only(predicates.attr_eq_const("b", "y"), ["a"], empty)
        assert self._mentions_only(predicates.attr_eq_const("a", "x"), ["a"], empty)

    def test_opaque_callables_keep_the_conservative_fallback(self):
        r = KRelation(NaturalsSemiring(), ["a", "b"], [(("x", "y"), 1)])
        assert self._mentions_only(lambda t: t["a"] == "x", ["a"], r)
        assert not self._mentions_only(lambda t: t["b"] == "y", ["a"], r)

    def test_selection_projection_identities_with_compound_predicates(self):
        # Structured conjunctions/negations are now admissible to the
        # commutation check; the identity must actually hold when scoped.
        r1 = random_relation(NaturalsSemiring(), ["a", "b"], num_tuples=5, domain_size=3, seed=11)
        r2 = random_relation(NaturalsSemiring(), ["a", "b"], num_tuples=5, domain_size=3, seed=12)
        compound = predicates.conjunction(
            predicates.attr_eq_const("a", "v0"),
            predicates.negation(predicates.attr_eq_const("a", "v2")),
        )
        report = check_selection_projection_identities(
            r1, r2, predicates=[compound], projection_attributes=["a"]
        )
        assert report.ok, report.violations


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    semiring_index=st.integers(min_value=0, max_value=len(ALL_SEMIRINGS) - 1),
)
def test_join_distributes_over_union_property(seed, semiring_index):
    """Property-based version of the distributivity identity over random relations."""
    semiring = ALL_SEMIRINGS[semiring_index]
    rng = random.Random(seed)
    r1 = random_relation(semiring, ["a", "b"], num_tuples=rng.randint(0, 5), domain_size=3, seed=seed)
    r2 = random_relation(
        semiring, ["b", "c"], num_tuples=rng.randint(0, 5), domain_size=3, seed=seed + 1, annotation_offset=10
    )
    r3 = random_relation(
        semiring, ["b", "c"], num_tuples=rng.randint(0, 5), domain_size=3, seed=seed + 2, annotation_offset=20
    )
    lhs = operators.join(r1, operators.union(r2, r3))
    rhs = operators.union(operators.join(r1, r2), operators.join(r1, r3))
    assert lhs.equal_to(rhs)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    semiring_index=st.integers(min_value=0, max_value=len(ALL_SEMIRINGS) - 1),
)
def test_projection_commutes_with_union_property(seed, semiring_index):
    semiring = ALL_SEMIRINGS[semiring_index]
    r1 = random_relation(semiring, ["a", "b"], num_tuples=5, domain_size=3, seed=seed)
    r2 = random_relation(
        semiring, ["a", "b"], num_tuples=5, domain_size=3, seed=seed + 7, annotation_offset=10
    )
    lhs = operators.project(operators.union(r1, r2), ["a"])
    rhs = operators.union(operators.project(r1, ["a"]), operators.project(r2, ["a"]))
    assert lhs.equal_to(rhs)
