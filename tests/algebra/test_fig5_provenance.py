"""Figure 5(c) and Theorem 4.3: provenance polynomials and factorization (E5, T2)."""

import pytest

from repro.algebra import factorized_evaluate, provenance_of_query, verify_factorization
from repro.relations import Tup
from repro.semirings import (
    BooleanSemiring,
    FuzzySemiring,
    NaturalsSemiring,
    Polynomial,
    PosBoolSemiring,
    TropicalSemiring,
    WhyProvenanceSemiring,
)
from repro.workloads import (
    figure3_bag_database,
    figure5_provenance_ids,
    section2_database,
    section2_query,
)

EXPECTED_POLYNOMIALS = {
    ("a", "c"): "2*p^2",
    ("a", "e"): "p*r",
    ("d", "c"): "p*r",
    ("d", "e"): "2*r^2 + r*s",
    ("f", "e"): "2*s^2 + r*s",
}


def test_figure5c_provenance_polynomials():
    provenance, _tagged = provenance_of_query(
        section2_query(), figure3_bag_database(), ids=figure5_provenance_ids()
    )
    assert len(provenance) == 5
    for (a, c), polynomial in EXPECTED_POLYNOMIALS.items():
        assert provenance.annotation(Tup(a=a, c=c)) == Polynomial.parse(polynomial)


def test_provenance_distinguishes_de_from_fe():
    """How-provenance separates the tuples that why-provenance conflates."""
    provenance, _ = provenance_of_query(
        section2_query(), figure3_bag_database(), ids=figure5_provenance_ids()
    )
    assert provenance.annotation(Tup(a="d", c="e")) != provenance.annotation(Tup(a="f", c="e"))


def test_factorization_reproduces_bag_result():
    """Evaluating 2r^2 + rs at p=2, r=5, s=1 gives the Figure 3 multiplicity 55."""
    result = factorized_evaluate(
        section2_query(), figure3_bag_database(), ids=figure5_provenance_ids()
    )
    assert result.evaluated.annotation(Tup(a="d", c="e")) == 55
    assert result.evaluated.annotation(Tup(a="a", c="c")) == 8


@pytest.mark.parametrize(
    "semiring,annotations",
    [
        (NaturalsSemiring(), {("a", "b", "c"): 2, ("d", "b", "e"): 5, ("f", "g", "e"): 1}),
        (BooleanSemiring(), None),
        (FuzzySemiring(), {("a", "b", "c"): 0.6, ("d", "b", "e"): 0.5, ("f", "g", "e"): 0.1}),
        (TropicalSemiring(), {("a", "b", "c"): 3, ("d", "b", "e"): 7, ("f", "g", "e"): 1}),
        (WhyProvenanceSemiring(), {("a", "b", "c"): frozenset({"p"}), ("d", "b", "e"): frozenset({"r"}), ("f", "g", "e"): frozenset({"s"})}),
        (PosBoolSemiring(), None),
    ],
    ids=lambda x: getattr(x, "name", "data"),
)
def test_factorization_theorem_across_semirings(semiring, annotations):
    """Theorem 4.3: q(R) = Eval_v(q(R-bar)) for every commutative semiring."""
    database = section2_database(semiring, annotations)
    assert verify_factorization(section2_query(), database)


def test_factorization_on_random_bag_instances(rng):
    from repro.workloads import star_join_database
    from repro.algebra import Q

    database = star_join_database(NaturalsSemiring(), fact_tuples=30, dimension_tuples=10, seed=7)
    query = (
        Q.relation("F")
        .join(Q.relation("D1"))
        .join(Q.relation("D2"))
        .project("a", "y")
    )
    assert verify_factorization(query, database)
