"""The positive-algebra operators of Definition 3.2."""

import pytest

from repro.algebra import operators, predicates
from repro.errors import QueryError, SchemaError
from repro.relations import KRelation
from repro.semirings import BooleanSemiring, NaturalsSemiring, Polynomial, ProvenancePolynomialSemiring


@pytest.fixture
def bag_relation():
    bag = NaturalsSemiring()
    return KRelation(bag, ["a", "b"], [(("x", "1"), 2), (("x", "2"), 3), (("y", "1"), 1)])


class TestUnion:
    def test_annotations_are_added(self, bag_relation):
        other = KRelation(bag_relation.semiring, ["a", "b"], [(("x", "1"), 10)])
        result = operators.union(bag_relation, other)
        assert result.annotation(("x", "1")) == 12
        assert result.annotation(("y", "1")) == 1

    def test_requires_union_compatible_schemas(self, bag_relation):
        other = KRelation(bag_relation.semiring, ["a", "c"])
        with pytest.raises(SchemaError):
            operators.union(bag_relation, other)

    def test_requires_same_semiring(self, bag_relation):
        other = KRelation(BooleanSemiring(), ["a", "b"], [("x", "1")])
        with pytest.raises(QueryError):
            operators.union(bag_relation, other)


class TestProjection:
    def test_annotations_of_merged_tuples_are_added(self, bag_relation):
        result = operators.project(bag_relation, ["a"])
        assert result.annotation(("x",)) == 5
        assert result.annotation(("y",)) == 1

    def test_unknown_attribute_rejected(self, bag_relation):
        with pytest.raises(SchemaError):
            operators.project(bag_relation, ["z"])


class TestSelection:
    def test_true_false_predicates(self, bag_relation):
        assert operators.select(bag_relation, predicates.true).equal_to(bag_relation)
        assert len(operators.select(bag_relation, predicates.false)) == 0

    def test_equality_predicate(self, bag_relation):
        result = operators.select(bag_relation, predicates.attr_eq_const("a", "x"))
        assert len(result) == 2
        assert result.annotation(("x", "2")) == 3

    def test_non_boolean_predicate_rejected(self, bag_relation):
        with pytest.raises(QueryError):
            operators.select(bag_relation, lambda t: 7)

    def test_semiring_valued_zero_one_predicate_accepted(self, bag_relation):
        result = operators.select(bag_relation, lambda t: 1 if t["a"] == "x" else 0)
        assert len(result) == 2


class TestJoin:
    def test_annotations_are_multiplied(self):
        bag = NaturalsSemiring()
        left = KRelation(bag, ["a", "b"], [(("x", "1"), 2), (("y", "2"), 3)])
        right = KRelation(bag, ["b", "c"], [(("1", "p"), 5), (("1", "q"), 7)])
        result = operators.join(left, right)
        assert result.annotation(("x", "1", "p")) == 10
        assert result.annotation(("x", "1", "q")) == 14
        assert len(result) == 2

    def test_join_on_disjoint_schemas_is_cross_product(self):
        bag = NaturalsSemiring()
        left = KRelation(bag, ["a"], [(("x",), 2)])
        right = KRelation(bag, ["b"], [(("1",), 3), (("2",), 1)])
        result = operators.join(left, right)
        assert len(result) == 2
        assert result.annotation(("x", "1")) == 6

    def test_intersection_is_join_on_same_schema(self):
        bag = NaturalsSemiring()
        left = KRelation(bag, ["a"], [(("x",), 2), (("y",), 1)])
        right = KRelation(bag, ["a"], [(("x",), 3)])
        result = operators.intersection(left, right)
        assert result.annotation(("x",)) == 6
        assert ("y",) not in result
        with pytest.raises(SchemaError):
            operators.intersection(left, KRelation(bag, ["b"]))


class TestRename:
    def test_rename_changes_schema_and_tuples(self, bag_relation):
        result = operators.rename(bag_relation, {"a": "left"})
        assert result.schema.attribute_set == {"left", "b"}
        assert result.annotation({"left": "x", "b": "1"}) == 2

    def test_invalid_renamings_rejected(self, bag_relation):
        with pytest.raises(SchemaError):
            operators.rename(bag_relation, {"z": "w"})
        with pytest.raises(SchemaError):
            operators.rename(bag_relation, {"a": "b"})
        with pytest.raises(SchemaError):
            operators.rename(bag_relation, {"a": "c", "b": "c"})


class TestProvenanceOperators:
    def test_join_multiplies_polynomials(self):
        nx = ProvenancePolynomialSemiring()
        left = KRelation(nx, ["a", "b"], [(("x", "1"), Polynomial.var("p"))])
        right = KRelation(nx, ["b", "c"], [(("1", "q"), Polynomial.var("r"))])
        result = operators.join(left, right)
        assert result.annotation(("x", "1", "q")) == Polynomial.parse("p*r")

    def test_projection_adds_polynomials(self):
        nx = ProvenancePolynomialSemiring()
        relation = KRelation(
            nx,
            ["a", "b"],
            [(("x", "1"), Polynomial.var("p")), (("x", "2"), Polynomial.var("r"))],
        )
        result = operators.project(relation, ["a"])
        assert result.annotation(("x",)) == Polynomial.parse("p + r")
