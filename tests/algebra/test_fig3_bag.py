"""Figure 3: bag-semantics evaluation of the Section 2 query (E3)."""

from repro.relations import Tup
from repro.semirings import BooleanSemiring, WhyProvenanceSemiring
from repro.workloads import figure3_bag_database, figure5_why_database, section2_database, section2_query

EXPECTED_MULTIPLICITIES = {
    ("a", "c"): 8,
    ("a", "e"): 10,
    ("d", "c"): 10,
    ("d", "e"): 55,
    ("f", "e"): 7,
}


def test_figure3_multiplicities_match_paper():
    result = section2_query().evaluate(figure3_bag_database())
    assert len(result) == len(EXPECTED_MULTIPLICITIES)
    for (a, c), expected in EXPECTED_MULTIPLICITIES.items():
        assert result.annotation(Tup(a=a, c=c)) == expected


def test_set_semantics_support_matches_bag_support():
    """Proposition 5.4-style sanity check at the RA level: the Boolean answer
    is the support of the bag answer."""
    bag_result = section2_query().evaluate(figure3_bag_database())
    bool_result = section2_query().evaluate(section2_database(BooleanSemiring()))
    assert bag_result.support == bool_result.support
    assert all(annotation is True for annotation in bool_result.annotations())


def test_figure5b_why_provenance():
    """Figure 5(b): the why-provenance of each answer tuple."""
    result = section2_query().evaluate(figure5_why_database())
    expected = {
        ("a", "c"): {"p"},
        ("a", "e"): {"p", "r"},
        ("d", "c"): {"p", "r"},
        ("d", "e"): {"r", "s"},
        ("f", "e"): {"r", "s"},
    }
    assert len(result) == 5
    for (a, c), lineage in expected.items():
        assert result.annotation(Tup(a=a, c=c)) == frozenset(lineage)


def test_why_provenance_cannot_distinguish_de_from_fe():
    """The limitation discussed in Section 4: (d,e) and (f,e) share lineage."""
    result = section2_query().evaluate(figure5_why_database())
    assert result.annotation(Tup(a="d", c="e")) == result.annotation(Tup(a="f", c="e"))
