"""Section 9: query containment under K-relation semantics (T6, Theorem 9.2)."""

import pytest

from repro.algebra import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    check_containment_on_instance,
    contained_in_semiring,
    cq_contained_set,
    ucq_contained_set,
)
from repro.algebra.containment import containment_equivalence_counterexample, random_databases
from repro.relations import Database
from repro.semirings import (
    BooleanSemiring,
    FuzzySemiring,
    NaturalsSemiring,
    PosBoolSemiring,
)
from repro.semirings.posbool import BoolExpr

# q_specific(x) :- R(x, x)   is contained in   q_general(x) :- R(x, y)
Q_SPECIFIC = ConjunctiveQuery.parse("Q(x) :- R(x, x)")
Q_GENERAL = ConjunctiveQuery.parse("Q(x) :- R(x, y)")
# the two-step query is contained in the one-or-two-step UCQ
Q_TWO_STEP = ConjunctiveQuery.parse("Q(x, y) :- R(x, z), R(z, y)")
Q_ONE_STEP = ConjunctiveQuery.parse("Q(x, y) :- R(x, y)")


class TestSetContainment:
    def test_chandra_merlin_positive(self):
        assert cq_contained_set(Q_SPECIFIC, Q_GENERAL)

    def test_chandra_merlin_negative(self):
        assert not cq_contained_set(Q_GENERAL, Q_SPECIFIC)
        assert not cq_contained_set(Q_ONE_STEP, Q_TWO_STEP)

    def test_ucq_containment(self):
        union = UnionOfConjunctiveQueries([Q_ONE_STEP, Q_TWO_STEP])
        assert ucq_contained_set(Q_TWO_STEP, union)
        assert ucq_contained_set(Q_ONE_STEP, union)
        assert not ucq_contained_set(union, Q_TWO_STEP)

    def test_equivalent_queries_contained_both_ways(self):
        q1 = ConjunctiveQuery.parse("Q(x) :- R(x, y), R(x, z)")
        q2 = ConjunctiveQuery.parse("Q(x) :- R(x, y)")
        assert cq_contained_set(q1, q2) and cq_contained_set(q2, q1)


class TestTheorem92:
    """For distributive lattices, ⊑_K coincides with ⊑_B."""

    @pytest.mark.parametrize(
        "lattice", [BooleanSemiring(), PosBoolSemiring(), FuzzySemiring()], ids=lambda s: s.name
    )
    def test_lattice_containment_equals_set_containment(self, lattice):
        assert contained_in_semiring(Q_SPECIFIC, Q_GENERAL, lattice) == cq_contained_set(
            Q_SPECIFIC, Q_GENERAL
        )
        assert contained_in_semiring(Q_GENERAL, Q_SPECIFIC, lattice) == cq_contained_set(
            Q_GENERAL, Q_SPECIFIC
        )

    def test_no_lattice_counterexample_when_set_containment_holds(self):
        """Empirical direction of Theorem 9.2: search for a violating PosBool instance."""
        pool = [BoolExpr.var("e1"), BoolExpr.var("e2"), BoolExpr.var("e1") & BoolExpr.var("e2")]
        witness = containment_equivalence_counterexample(
            Q_SPECIFIC, Q_GENERAL, PosBoolSemiring(), annotation_pool=pool, trials=30
        )
        assert witness is None

    def test_fuzzy_instances_respect_containment(self):
        pool = [0.2, 0.5, 0.9, 1.0]
        witness = containment_equivalence_counterexample(
            Q_SPECIFIC, Q_GENERAL, FuzzySemiring(), annotation_pool=pool, trials=30
        )
        assert witness is None


class TestBagContainment:
    def test_set_containment_does_not_imply_bag_containment(self):
        """The classical example: under bags, R(x,x) ⊑ R(x,y) can fail on multiplicities?
        Actually q_specific ⊑_N q_general holds; a containment that holds for sets but
        fails for bags is q(x) :- R(x,y),R(x,z)  vs  q(x) :- R(x,y)."""
        q_double = ConjunctiveQuery.parse("Q(x) :- R(x, y), R(x, z)")
        q_single = ConjunctiveQuery.parse("Q(x) :- R(x, y)")
        # set semantics: equivalent
        assert cq_contained_set(q_double, q_single)
        assert cq_contained_set(q_single, q_double)
        # bag semantics: the double query over-counts, so it is NOT contained
        assert not contained_in_semiring(q_double, q_single, NaturalsSemiring(), trials=40)
        # but the single query is contained in the double one
        assert contained_in_semiring(q_single, q_double, NaturalsSemiring(), trials=40)

    def test_explicit_bag_counterexample(self):
        q_double = ConjunctiveQuery.parse("Q(x) :- R(x, y), R(x, z)")
        q_single = ConjunctiveQuery.parse("Q(x) :- R(x, y)")
        db = Database(NaturalsSemiring())
        db.create("R", ["a1", "a2"], [(("a", "b"), 1), (("a", "c"), 1)])
        witness = check_containment_on_instance(q_double, q_single, db)
        assert witness is not None
        assert witness.left_annotation == 4 and witness.right_annotation == 2


def test_random_databases_generator_is_deterministic():
    dbs1 = list(random_databases([Q_GENERAL], NaturalsSemiring(), [1, 2], trials=3, seed=5))
    dbs2 = list(random_databases([Q_GENERAL], NaturalsSemiring(), [1, 2], trials=3, seed=5))
    for a, b in zip(dbs1, dbs2):
        assert a["R"].equal_to(b["R"])
