"""Cost model units: statistics collection, selectivity, monotonicity, reorder."""

from __future__ import annotations

from repro import Database, NaturalsSemiring, Q
from repro.algebra import predicates
from repro.algebra.ast import Join
from repro.planner import CostModel, Statistics, optimize
from repro.planner.cost import DEFAULT_SELECTIVITY


def _database(r_tuples=4):
    database = Database(NaturalsSemiring())
    database.create(
        "R",
        ["a", "b"],
        [((str(i), str(i % 2)), 1) for i in range(r_tuples)],
    )
    database.create("S", ["b", "c"], [(("0", "x"), 1), (("1", "y"), 1)])
    return database


def test_statistics_collects_cardinality_and_distinct_counts():
    stats = Statistics.from_database(_database())
    r = stats.table("R")
    assert r.cardinality == 4
    assert r.distinct == {"a": 4, "b": 2}
    assert stats.table("missing") is None


def test_selectivity_formulas():
    stats = Statistics.from_database(_database())
    model = CostModel(stats)
    child = model.estimate(Q.relation("R"))
    assert model.selectivity(predicates.true, child) == 1.0
    assert model.selectivity(predicates.false, child) == 0.0
    assert model.selectivity(predicates.attr_eq_const("a", "1"), child) == 0.25
    assert model.selectivity(predicates.attr_eq_const("b", "1"), child) == 0.5
    # attribute = attribute divides by the larger distinct count
    assert model.selectivity(predicates.attr_eq("a", "b"), child) == 0.25
    # conjunctions multiply, negation complements
    conj = predicates.conjunction(
        predicates.attr_eq_const("a", "1"), predicates.attr_eq_const("b", "1")
    )
    assert model.selectivity(conj, child) == 0.125
    neg = predicates.negation(predicates.attr_eq_const("a", "1"))
    assert model.selectivity(neg, child) == 0.75
    # opaque callables get the fixed default
    assert model.selectivity(lambda t: True, child) == DEFAULT_SELECTIVITY


def test_cardinality_estimates_shrink_under_selection_and_join():
    model = CostModel(Statistics.from_database(_database()))
    base = model.cardinality(Q.relation("R"))
    selected = model.cardinality(Q.relation("R").where_eq("a", "1"))
    assert selected < base
    cross = model.cardinality(Q.relation("R").join(Q.relation("S").rename({"b": "e"})))
    natural = model.cardinality(Q.relation("R").join(Q.relation("S")))
    assert natural < cross  # the shared attribute divides the cross product


def test_cost_is_monotone_in_relation_size():
    query = Q.relation("R").join(Q.relation("S")).project("a", "c")
    small = CostModel(Statistics.from_database(_database(4)))
    large = CostModel(Statistics.from_database(_database(40)))
    assert small.cost(query) < large.cost(query)


def test_cost_prefers_the_pushed_down_plan():
    database = _database(40)
    model = CostModel(Statistics.from_database(database))
    unpushed = Q.relation("R").join(Q.relation("S")).where_eq("a", "1")
    pushed = Q.relation("R").where_eq("a", "1").join(Q.relation("S"))
    assert model.cost(pushed) < model.cost(unpushed)


def test_reorder_starts_left_deep_from_the_smallest_leaf():
    database = Database(NaturalsSemiring())
    database.create("Big", ["a", "b"], [((str(i), str(i)), 1) for i in range(50)])
    database.create("Mid", ["b", "c"], [((str(i), str(i)), 1) for i in range(10)])
    database.create("Tiny", ["c", "d"], [(("1", "1"), 1), (("2", "2"), 1)])
    query = Q.relation("Big").join(Q.relation("Mid")).join(Q.relation("Tiny"))
    plan = optimize(query, database)
    assert isinstance(plan, Join)
    assert isinstance(plan.left, Join)
    # Left-deep, seeded at Tiny, then its neighbour Mid, then Big.
    assert plan.left.left.name == "Tiny"
    assert plan.left.right.name == "Mid"
    assert plan.right.name == "Big"
    assert plan.evaluate(database).equal_to(query.evaluate(database))


def test_reorder_prefers_connected_joins_over_cross_products():
    database = Database(NaturalsSemiring())
    database.create("R", ["a", "b"], [((str(i), str(i)), 1) for i in range(8)])
    database.create("S", ["b", "c"], [((str(i), str(i)), 1) for i in range(9)])
    database.create("U", ["z"], [(("1",), 1), (("2",), 1)])
    # As written: (R ⋈ U) is a cross product taken first.
    query = Q.relation("R").join(Q.relation("U")).join(Q.relation("S"))
    plan = optimize(query, database)
    assert isinstance(plan.left, Join)

    def cross_products(node, catalog):
        from repro.planner import infer_attributes

        if not isinstance(node, Join):
            return 0
        left = set(infer_attributes(node.left, catalog) or ())
        right = set(infer_attributes(node.right, catalog) or ())
        own = 0 if (left & right) else 1
        return own + cross_products(node.left, catalog) + cross_products(node.right, catalog)

    from repro.planner import catalog_of

    catalog = catalog_of(database)
    # As written the plan crosses R with U first; the reordered plan joins
    # the connected R ⋈ S chain before crossing with the disconnected U.
    assert cross_products(plan, catalog) <= cross_products(query, catalog)
    assert plan.evaluate(database).equal_to(query.evaluate(database))
