"""Differential plan-equivalence harness: optimized vs. as-written evaluation.

Every rewrite the planner applies is an instance of a Proposition 3.4
identity, so an optimized plan must produce the *same K-relation* as the
original query -- annotation for annotation -- on every database and over
every commutative semiring.  This suite drives that property with
hypothesis-generated random query trees (joins, unions, projections,
renames, and the full selection repertoire including opaque callables) over
randomized databases, for the registry semirings named by the issue:
N (bag), B, Tropical, PosBool(X), Z, N[X], and provenance circuits.

Circuits are compared by the polynomial they denote: a reordered plan sums
and multiplies in a different association order, which yields semantically
equal but structurally distinct DAGs (universality, Proposition 4.2).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from strategies import (
    PLANNER_SEMIRING_NAMES,
    ra_queries,
    view_databases,
)

from repro.circuits import to_polynomial
from repro.incremental import MaterializedView, UpdateBatch, apply_batch_to_database
from repro.planner import optimize, plan_signature
from repro.semirings import get_semiring

DIFFERENTIAL_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def _comparable(semiring, value):
    if semiring.name == "Circ[X]":
        return to_polynomial(value)
    return value


def _assert_same_relation(semiring, expected, actual, context: str):
    assert expected.schema.attribute_set == actual.schema.attribute_set, context
    tuples = set(expected.support) | set(actual.support)
    zero = semiring.zero()
    for tup in tuples:
        left = expected.annotation(tup)
        right = actual.annotation(tup)
        assert _comparable(semiring, left) == _comparable(semiring, right), (
            f"{context}\n{tup}: as-written={semiring.format_value(left)} "
            f"optimized={semiring.format_value(right)}"
        )


@pytest.mark.parametrize("semiring_name", PLANNER_SEMIRING_NAMES)
@given(data=st.data())
@DIFFERENTIAL_SETTINGS
def test_optimized_plans_agree_annotation_for_annotation(semiring_name, data):
    """optimize(q, db) evaluates identically to q on random queries/databases."""
    semiring = get_semiring(semiring_name)
    query, _schema = data.draw(ra_queries(), label="query")
    database = data.draw(view_databases(semiring), label="database")
    baseline = query.evaluate(database)
    plan = optimize(query, database)
    _assert_same_relation(
        semiring,
        baseline,
        plan.evaluate(database),
        f"query: {query}\nplan:  {plan}\nsemiring: {semiring.name}",
    )
    # The plumbed-through entry point takes the same path.
    _assert_same_relation(
        semiring,
        baseline,
        query.evaluate(database, optimize=True),
        f"evaluate(optimize=True) over {semiring.name}: {query}",
    )


@pytest.mark.parametrize("semiring_name", PLANNER_SEMIRING_NAMES)
@given(data=st.data())
@DIFFERENTIAL_SETTINGS
def test_optimize_is_a_fixpoint_on_random_queries(semiring_name, data):
    """Optimizing an optimized plan changes nothing (stable signature)."""
    semiring = get_semiring(semiring_name)
    query, _schema = data.draw(ra_queries(), label="query")
    database = data.draw(view_databases(semiring), label="database")
    once = optimize(query, database)
    twice = optimize(once, database)
    assert plan_signature(once) == plan_signature(twice), (
        f"not a fixpoint over {semiring.name}:\n"
        f"once:  {once}\ntwice: {twice}"
    )


@pytest.mark.parametrize("semiring_name", PLANNER_SEMIRING_NAMES)
@given(data=st.data())
@DIFFERENTIAL_SETTINGS
def test_rewrites_without_schema_catalog_agree(semiring_name, data):
    """Without a database the planner still rewrites safely (schema-dependent
    rules skip; the result must stay equivalent)."""
    semiring = get_semiring(semiring_name)
    query, _schema = data.draw(ra_queries(), label="query")
    database = data.draw(view_databases(semiring), label="database")
    plan = optimize(query, semiring=semiring)
    _assert_same_relation(
        semiring,
        query.evaluate(database),
        plan.evaluate(database),
        f"schema-free optimize over {semiring.name}: {query} -> {plan}",
    )


@pytest.mark.parametrize("semiring_name", ("bag", "bool", "tropical", "posbool", "z"))
@given(data=st.data())
@settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_optimized_materialized_views_maintain_identically(semiring_name, data):
    """A view compiled from the optimized plan stays equal to recomputation
    of the *original* query under random insertion streams."""
    from strategies import BASE_SCHEMAS, DOMAIN, annotation_for

    semiring = get_semiring(semiring_name)
    query, _schema = data.draw(ra_queries(), label="query")
    database = data.draw(view_databases(semiring), label="database")
    shadow = database.copy()
    view = MaterializedView(query, database, optimize=True)
    _assert_same_relation(
        semiring, query.evaluate(shadow), view.relation, f"initial view: {query}"
    )
    index = 5000
    for _ in range(data.draw(st.integers(min_value=1, max_value=3), label="batches")):
        insertions = {}
        for name in sorted(BASE_SCHEMAS):
            attributes = BASE_SCHEMAS[name]
            entries = []
            for _ in range(data.draw(st.integers(min_value=0, max_value=2))):
                values = tuple(
                    data.draw(st.sampled_from(DOMAIN)) for _ in attributes
                )
                index += 1
                entries.append((values, annotation_for(semiring, index, data.draw)))
            if entries:
                insertions[name] = entries
        batch = UpdateBatch(insertions=insertions)
        view.apply(batch)
        apply_batch_to_database(shadow, batch)
        _assert_same_relation(
            semiring,
            query.evaluate(shadow),
            view.relation,
            f"maintained optimized view: {query}\nplan: {view.plan}",
        )
