"""Unit tests for each rewrite rule: legality, gating, and the fixpoint."""

from __future__ import annotations

import pytest

from repro import Database, Q
from repro.algebra import predicates
from repro.algebra.ast import EmptyRelation, Join, Project, Rename, Select, Union
from repro.planner import explain, optimize, plan_signature
from repro.semirings import (
    BooleanSemiring,
    NaturalsSemiring,
    PosBoolSemiring,
    get_semiring,
)


def _database(semiring=None):
    semiring = semiring or NaturalsSemiring()
    database = Database(semiring)
    numeric = semiring.name in ("N", "Tropical")
    annotations = (2, 3, 1, 4, 1) if numeric else (True,) * 5
    database.create(
        "R", ["a", "b"], [(("1", "2"), annotations[0]), (("2", "3"), annotations[1])]
    )
    database.create(
        "S", ["b", "c"], [(("2", "x"), annotations[2]), (("3", "y"), annotations[3])]
    )
    database.create("T", ["c", "d"], [(("x", "u"), annotations[4])])
    return database


def _nodes(query, kind):
    found = [query] if isinstance(query, kind) else []
    for child in query.children():
        found.extend(_nodes(child, kind))
    return found


# ---------------------------------------------------------------------------
# Selection pushdown
# ---------------------------------------------------------------------------


def test_selection_pushes_through_join_to_the_covering_side():
    db = _database()
    query = Q.relation("R").join(Q.relation("S")).where_eq("a", "1")
    plan = optimize(query, db, reorder=False)
    selects = _nodes(plan, Select)
    assert len(selects) == 1
    # The selection sits directly on R (the only side with attribute "a").
    assert selects[0].child.name == "R"
    assert plan.evaluate(db).equal_to(query.evaluate(db))


def test_conjunction_splits_across_both_join_sides():
    db = _database()
    predicate = predicates.conjunction(
        predicates.attr_eq_const("a", "1"), predicates.attr_eq_const("c", "x")
    )
    query = Q.relation("R").join(Q.relation("S")).select(predicate)
    plan = optimize(query, db, reorder=False)
    selects = _nodes(plan, Select)
    placed = {s.child.name for s in selects}
    assert placed == {"R", "S"}
    assert plan.evaluate(db).equal_to(query.evaluate(db))


def test_cross_side_conjunct_stays_above_the_join():
    db = _database()
    predicate = predicates.conjunction(
        predicates.attr_eq("a", "c"),  # spans both sides: not pushable
        predicates.attr_eq_const("a", "1"),
    )
    query = Q.relation("R").join(Q.relation("S")).select(predicate)
    plan = optimize(query, db, reorder=False)
    kept = [s for s in _nodes(plan, Select) if isinstance(s.child, Join)]
    assert len(kept) == 1
    assert predicates.as_predicate(kept[0].predicate).attributes == {"a", "c"}
    assert plan.evaluate(db).equal_to(query.evaluate(db))


def test_selection_pushes_through_projection_only_when_scoped():
    db = _database()
    scoped = Q.relation("R").project("a").where_eq("a", "1")
    plan = optimize(scoped, db, reorder=False)
    assert isinstance(plan, Project)
    assert isinstance(plan.child, Select)
    assert plan.evaluate(db).equal_to(scoped.evaluate(db))


def test_opaque_predicate_is_never_pushed_into_a_join():
    db = _database()

    def mystery(tup):
        return tup["a"] == "1"

    query = Q.relation("R").join(Q.relation("S")).select(mystery)
    plan = optimize(query, db, reorder=False)
    selects = _nodes(plan, Select)
    assert len(selects) == 1
    assert isinstance(selects[0].child, Join)
    assert plan.evaluate(db).equal_to(query.evaluate(db))


def test_opaque_predicate_still_pushes_through_union():
    db = _database()

    def mystery(tup):
        return tup["b"] == "2"

    query = Q.relation("R").union(Q.relation("R")).select(mystery)
    plan = optimize(query, db, reorder=False)
    for select in _nodes(plan, Select):
        assert not isinstance(select.child, Union)
    assert plan.evaluate(db).equal_to(query.evaluate(db))


def test_selection_pushes_through_rename_with_inverse_mapping():
    db = _database()
    query = Q.relation("R").rename({"b": "u"}).where_eq("u", "2")
    plan = optimize(query, db, reorder=False)
    assert isinstance(plan, Rename)
    select = plan.child
    assert isinstance(select, Select)
    assert predicates.as_predicate(select.predicate).attributes == {"b"}
    assert plan.evaluate(db).equal_to(query.evaluate(db))


def test_cascaded_selections_fuse():
    db = _database()
    query = Q.relation("R").where_eq("a", "1").where_eq("b", "2")
    plan = optimize(query, db, reorder=False)
    assert len(_nodes(plan, Select)) == 1
    assert plan.evaluate(db).equal_to(query.evaluate(db))


def test_fused_selections_keep_inner_guard_order():
    # Regression: σ_P(σ_Q(R)) must evaluate Q before P after fusion -- the
    # inner selection may be a guard for a partial outer predicate.
    from repro import Database

    db = Database(NaturalsSemiring())
    db.create("R", ["a"], [(("0",), 1), (("2",), 2)])
    query = (
        Q.relation("R")
        .select(predicates.attr_neq_const("a", "0"))
        .select(lambda t: 10 / int(t["a"]) > 1)
    )
    baseline = query.evaluate(db)
    optimized = query.evaluate(db, optimize=True)  # must not divide by zero
    assert optimized.equal_to(baseline)


# ---------------------------------------------------------------------------
# Projection rules
# ---------------------------------------------------------------------------


def test_projections_fuse_and_push_into_join_sides():
    db = _database()
    query = (
        Q.relation("R").join(Q.relation("T"))  # cross product: no shared attrs
        .project("a", "b", "c", "d")
        .project("a", "d")
    )
    plan = optimize(query, db, reorder=False)
    # π_{a,d} over the cross product narrows R to (a) and leaves T alone
    # (T is already exactly (c, d)?  no -- d wanted, c not shared, so (d)).
    inner = [p for p in _nodes(plan, Project) if not isinstance(p.child, Join)]
    narrowed = {tuple(p.attributes) for p in inner}
    assert ("a",) in narrowed
    assert ("d",) in narrowed
    assert plan.evaluate(db).equal_to(query.evaluate(db))


def test_identity_projection_is_eliminated():
    db = _database()
    query = Q.relation("R").project("a", "b")
    plan = optimize(query, db, reorder=False)
    assert plan_signature(plan) == ("rel", "R")


def test_projection_pushes_through_union():
    db = _database()
    query = Q.relation("R").union(Q.relation("R")).project("a")
    plan = optimize(query, db, reorder=False)
    assert isinstance(plan, Union)
    assert plan.evaluate(db).equal_to(query.evaluate(db))


def test_projection_pushes_through_rename():
    db = _database()
    query = Q.relation("R").rename({"b": "u"}).project("a")
    plan = optimize(query, db, reorder=False)
    # The rename renamed only "b", which the projection drops: both vanish.
    assert plan_signature(plan) == ("project", ("a",), ("rel", "R"))


# ---------------------------------------------------------------------------
# Empty relation, rename and trivial-predicate elimination
# ---------------------------------------------------------------------------


def test_empty_relation_annihilates_joins_and_unions():
    db = _database()
    empty = Q.empty(["a", "b"])
    join_plan = optimize(Q.relation("R").join(empty), db, reorder=False)
    assert isinstance(join_plan, EmptyRelation)
    union_plan = optimize(Q.relation("R").union(empty), db, reorder=False)
    assert plan_signature(union_plan) == ("rel", "R")


def test_select_false_becomes_empty_and_true_vanishes():
    db = _database()
    false_plan = optimize(Q.relation("R").select(predicates.false), db, reorder=False)
    assert isinstance(false_plan, EmptyRelation)
    assert false_plan.schema.attribute_set == {"a", "b"}
    true_plan = optimize(Q.relation("R").select(predicates.true), db, reorder=False)
    assert plan_signature(true_plan) == ("rel", "R")


def test_cascaded_renames_fuse_and_identity_renames_vanish():
    db = _database()
    roundtrip = Q.relation("R").rename({"b": "u"}).rename({"u": "b"})
    assert plan_signature(optimize(roundtrip, db, reorder=False)) == ("rel", "R")
    chained = Q.relation("R").rename({"b": "u"}).rename({"u": "v"})
    plan = optimize(chained, db, reorder=False)
    assert isinstance(plan, Rename)
    assert plan.mapping == {"b": "v"}
    assert plan.evaluate(db).equal_to(chained.evaluate(db))


# ---------------------------------------------------------------------------
# Idempotence-gated rewrites
# ---------------------------------------------------------------------------


def test_union_dedupe_fires_only_under_idempotent_addition():
    query = Q.relation("R").union(Q.relation("R"))
    bool_db = _database(BooleanSemiring())
    assert plan_signature(optimize(query, bool_db)) == ("rel", "R")
    bag_db = _database()
    bag_plan = optimize(query, bag_db)
    assert isinstance(bag_plan, Union)  # N is not idempotent: R ∪ R != R
    assert bag_plan.evaluate(bag_db).equal_to(query.evaluate(bag_db))


def test_self_join_dedupe_fires_only_under_idempotent_multiplication():
    query = Q.relation("R").join(Q.relation("R"))
    posbool_db = _database(PosBoolSemiring())
    assert plan_signature(optimize(query, posbool_db)) == ("rel", "R")
    bag_db = _database()
    bag_plan = optimize(query, bag_db)
    assert isinstance(bag_plan, Join)  # N squares annotations: R ⋈ R != R
    assert bag_plan.evaluate(bag_db).equal_to(query.evaluate(bag_db))


def test_partial_comparison_conjunct_is_not_pushed_into_a_join():
    # Regression: σ_{c<5} over R ⋈ S must not move onto S, where it would see
    # (and raise on) mixed-type tuples the join filters away as written.
    from repro import Database

    db = Database(NaturalsSemiring())
    db.create("R", ["a", "b"], [(("x", 1), 1)])
    db.create("S", ["b", "c"], [((1, 2), 1), ((99, "oops"), 1)])
    predicate = predicates.conjunction(
        predicates.attr_eq_const("a", "x"), predicates.comparison("c", "<", 5)
    )
    query = Q.relation("R").join(Q.relation("S")).select(predicate)
    baseline = query.evaluate(db)
    optimized = query.evaluate(db, optimize=True)  # must not raise TypeError
    assert optimized.equal_to(baseline)
    plan = optimize(query, db, reorder=False)
    kept = [s for s in _nodes(plan, Select) if isinstance(s.child, Join)]
    assert any(
        "comparison" in str(predicates.as_predicate(s.predicate).signature())
        for s in kept
    )


def test_repr_equal_but_distinct_constants_do_not_dedupe():
    # Regression: two unequal constants with identical repr() must keep the
    # two union branches distinct under the idempotent dedupe rewrite.
    class Opaque:
        def __repr__(self):
            return "Opaque"

    c1, c2 = Opaque(), Opaque()
    db = Database(BooleanSemiring())
    relation = db.create("R", ["a", "b"], [])
    relation.add({"a": c1, "b": "l"})
    relation.add({"a": c2, "b": "r"})
    query = (
        Q.relation("R").select(predicates.attr_eq_const("a", c1))
        .union(Q.relation("R").select(predicates.attr_eq_const("a", c2)))
    )
    plan = optimize(query, db)
    assert plan.evaluate(db).equal_to(query.evaluate(db))
    assert len(plan.evaluate(db)) == 2


def test_tropical_gets_union_dedupe_but_not_join_dedupe():
    tropical = get_semiring("tropical")
    db = Database(tropical)
    db.create("R", ["a", "b"], [(("1", "2"), 2.0)])
    union_plan = optimize(Q.relation("R").union(Q.relation("R")), db)
    assert plan_signature(union_plan) == ("rel", "R")  # min is idempotent
    join_plan = optimize(Q.relation("R").join(Q.relation("R")), db)
    assert isinstance(join_plan, Join)  # + is not


def test_verify_properties_disables_gates_on_a_lying_semiring():
    class LyingSemiring(BooleanSemiring):
        # Declares idempotent multiplication but its `one` breaks the axioms
        # the verifier samples, so the gate must shut.
        name = "lying"

        def mul(self, a, b):
            return not (a and b)

    db = _database(LyingSemiring())
    query = Q.relation("R").join(Q.relation("R"))
    verified = optimize(query, db, verify_properties=True)
    assert isinstance(verified, Join)


# ---------------------------------------------------------------------------
# Fixpoint and explain
# ---------------------------------------------------------------------------

FIXPOINT_QUERIES = [
    Q.relation("R").join(Q.relation("S")).join(Q.relation("T")).where_eq("a", "1"),
    Q.relation("R").join(Q.relation("S")).project("a", "c").where_eq("a", "1"),
    Q.relation("R").rename({"b": "u"}).where_eq("u", "2").project("a"),
    Q.relation("R").union(Q.relation("R")).select(predicates.attr_eq("a", "b")),
    Q.relation("R").join(Q.empty(["a", "b"])).union(Q.relation("R")),
]


@pytest.mark.parametrize("query", FIXPOINT_QUERIES, ids=[str(q) for q in FIXPOINT_QUERIES])
def test_optimize_twice_is_a_no_op(query):
    db = _database()
    once = optimize(query, db)
    twice = optimize(once, db)
    assert plan_signature(once) == plan_signature(twice)


def test_explain_reports_rules_and_cost_reduction():
    db = _database()
    query = (
        Q.relation("R").join(Q.relation("S")).join(Q.relation("T"))
        .where_eq("a", "1")
        .project("a", "d")
    )
    report = explain(query, db)
    assert report.changed
    assert any("selection-pushdown" in rule for rule in report.applied_rules)
    assert report.cost_after <= report.cost_before
    assert "optimized:" in str(report)
