"""Structured-predicate units: attribute scoping, CNF splitting, renaming."""

from __future__ import annotations

import pytest

from repro.algebra import predicates
from repro.algebra.predicates import (
    AttrEquals,
    BasePredicate,
    Conjunction,
    OpaquePredicate,
    as_predicate,
)
from repro.relations.tuples import Tup


def test_every_factory_reports_exact_attributes():
    assert predicates.true.attributes == frozenset()
    assert predicates.false.attributes == frozenset()
    assert predicates.attr_eq("a", "b").attributes == {"a", "b"}
    assert predicates.attr_eq_const("a", 1).attributes == {"a"}
    assert predicates.attr_neq_const("b", 1).attributes == {"b"}
    assert predicates.comparison("c", "<", 5).attributes == {"c"}
    assert predicates.negation(predicates.attr_eq_const("a", 1)).attributes == {"a"}
    combined = predicates.conjunction(
        predicates.attr_eq_const("a", 1), predicates.attr_eq("b", "c")
    )
    assert combined.attributes == {"a", "b", "c"}
    either = predicates.disjunction(
        predicates.attr_eq_const("a", 1), predicates.attr_eq_const("d", 2)
    )
    assert either.attributes == {"a", "d"}


def test_opaque_callables_have_unknown_attributes():
    wrapped = as_predicate(lambda t: t["a"] == 1)
    assert isinstance(wrapped, OpaquePredicate)
    assert wrapped.attributes is None
    assert wrapped(Tup(a=1))
    # conjunction with an opaque part is itself unanalyzable
    mixed = predicates.conjunction(predicates.attr_eq_const("a", 1), lambda t: True)
    assert mixed.attributes is None
    with pytest.raises(TypeError):
        wrapped.rename({"a": "b"})


def test_as_predicate_is_identity_on_structured_predicates():
    predicate = predicates.attr_eq("a", "b")
    assert as_predicate(predicate) is predicate


def test_conjunction_flattens_for_cnf_splitting():
    nested = predicates.conjunction(
        predicates.conjunction(
            predicates.attr_eq_const("a", 1), predicates.attr_eq_const("b", 2)
        ),
        predicates.attr_eq_const("c", 3),
    )
    parts = nested.conjuncts()
    assert len(parts) == 3
    assert all(not isinstance(p, Conjunction) for p in parts)
    assert {next(iter(p.attributes)) for p in parts} == {"a", "b", "c"}
    # non-conjunctions split into themselves
    single = predicates.attr_eq_const("a", 1)
    assert single.conjuncts() == (single,)


def test_predicates_evaluate_like_their_semantics():
    t = Tup(a=1, b=1, c=5)
    assert predicates.true(t) and not predicates.false(t)
    assert predicates.attr_eq("a", "b")(t)
    assert not predicates.attr_eq("a", "c")(t)
    assert predicates.attr_eq_const("c", 5)(t)
    assert predicates.attr_neq_const("c", 6)(t)
    assert predicates.comparison("c", ">=", 5)(t)
    assert not predicates.comparison("c", "<", 5)(t)
    assert predicates.conjunction(
        predicates.attr_eq("a", "b"), predicates.attr_eq_const("c", 5)
    )(t)
    assert predicates.disjunction(
        predicates.false, predicates.attr_eq_const("a", 1)
    )(t)
    assert predicates.negation(predicates.attr_eq_const("a", 2))(t)


def test_rename_rewrites_attribute_references():
    renamed = predicates.attr_eq("a", "b").rename({"a": "x"})
    assert isinstance(renamed, AttrEquals)
    assert renamed.attributes == {"x", "b"}
    assert renamed(Tup(x=1, b=1))
    compound = predicates.conjunction(
        predicates.attr_eq_const("a", 1), predicates.comparison("b", "<", 9)
    ).rename({"a": "u", "b": "v"})
    assert compound.attributes == {"u", "v"}
    assert compound(Tup(u=1, v=3))


def test_signatures_give_structural_equality_and_hashing():
    p = predicates.conjunction(
        predicates.attr_eq_const("a", 1), predicates.attr_eq_const("b", 2)
    )
    q = predicates.conjunction(
        predicates.attr_eq_const("b", 2), predicates.attr_eq_const("a", 1)
    )
    assert p == q  # conjunction signatures are order-insensitive
    assert hash(p) == hash(q)
    assert p != predicates.attr_eq_const("a", 1)
    # opaque predicates compare by wrapped-callable identity
    fn = lambda t: True  # noqa: E731
    assert as_predicate(fn) == as_predicate(fn)
    assert as_predicate(fn) != as_predicate(lambda t: True)


def test_predicate_names_stay_descriptive():
    assert predicates.attr_eq("a", "b").__name__ == "eq_a_b"
    assert predicates.comparison("c", "<", 5).__name__ == "cmp_c_<"
    assert getattr(predicates.true, "__name__") == "true"
    assert isinstance(predicates.true, BasePredicate)


def test_totality_classification():
    assert predicates.true.total and predicates.false.total
    assert predicates.attr_eq("a", "b").total
    assert predicates.attr_eq_const("a", 1).total
    assert predicates.attr_neq_const("a", 1).total
    assert predicates.comparison("a", "==", 1).total
    assert predicates.comparison("a", "!=", 1).total
    assert not predicates.comparison("a", "<", 1).total  # may raise on mixed types
    assert not as_predicate(lambda t: True).total
    assert predicates.conjunction(
        predicates.attr_eq_const("a", 1), predicates.attr_eq("b", "c")
    ).total
    assert not predicates.conjunction(
        predicates.attr_eq_const("a", 1), predicates.comparison("b", "<", 2)
    ).total
    assert predicates.negation(predicates.attr_eq_const("a", 1)).total
    assert not predicates.negation(predicates.comparison("a", ">", 1)).total


def test_signatures_distinguish_constants_by_value_not_repr():
    class Opaque:
        def __repr__(self):
            return "same"

    c1, c2 = Opaque(), Opaque()
    assert repr(c1) == repr(c2)
    assert predicates.attr_eq_const("a", c1) != predicates.attr_eq_const("a", c2)
    assert predicates.attr_eq_const("a", 2) != predicates.attr_eq_const("a", 2.0)
    assert predicates.attr_eq_const("a", 2) == predicates.attr_eq_const("a", 2)
    # unhashable constants fall back to identity (still hashable signatures)
    lst = [1, 2]
    p = predicates.attr_eq_const("a", lst)
    assert p == predicates.attr_eq_const("a", lst)
    assert p != predicates.attr_eq_const("a", [1, 2])
    hash(p)
    # conjunction signatures stay sortable with mixed-type constants
    mixed = predicates.conjunction(
        predicates.attr_eq_const("a", 1), predicates.attr_eq_const("b", "x")
    )
    assert mixed == predicates.conjunction(
        predicates.attr_eq_const("b", "x"), predicates.attr_eq_const("a", 1)
    )


def test_unknown_comparison_operator_raises():
    with pytest.raises(KeyError):
        predicates.comparison("a", "~", 1)
