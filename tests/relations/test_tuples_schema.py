"""Named-perspective tuples and schemas."""

import pytest

from repro.errors import SchemaError
from repro.relations import Schema, Tup


class TestTup:
    def test_equality_is_order_independent(self):
        assert Tup(a=1, b=2) == Tup(b=2, a=1)
        assert hash(Tup(a=1, b=2)) == hash(Tup(b=2, a=1))

    def test_from_values(self):
        t = Tup.from_values(["a", "b"], [1, 2])
        assert t["a"] == 1 and t["b"] == 2
        with pytest.raises(SchemaError):
            Tup.from_values(["a"], [1, 2])

    def test_restrict_is_projection(self):
        t = Tup(a=1, b=2, c=3)
        assert t.restrict(["a", "c"]) == Tup(a=1, c=3)
        with pytest.raises(SchemaError):
            t.restrict(["z"])

    def test_rename(self):
        t = Tup(a=1, b=2)
        assert t.rename({"a": "x"}) == Tup(x=1, b=2)
        with pytest.raises(SchemaError):
            t.rename({"a": "b"})  # collides with existing attribute

    def test_merge_compatible(self):
        left, right = Tup(a=1, b=2), Tup(b=2, c=3)
        assert left.compatible_with(right)
        assert left.merge(right) == Tup(a=1, b=2, c=3)

    def test_merge_incompatible_raises(self):
        with pytest.raises(SchemaError):
            Tup(a=1, b=2).merge(Tup(b=9, c=3))

    def test_mapping_protocol(self):
        t = Tup(a=1, b=2)
        assert set(t) == {"a", "b"}
        assert "a" in t and "z" not in t
        assert t.get("z", 42) == 42
        assert len(t) == 2
        assert t.as_dict() == {"a": 1, "b": 2}
        assert t.values_for(["b", "a"]) == (2, 1)

    def test_duplicate_kwarg_rejected(self):
        with pytest.raises(SchemaError):
            Tup({"a": 1}, a=2)


class TestSchema:
    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_equality_ignores_order(self):
        assert Schema(["a", "b"]) == Schema(["b", "a"])
        assert hash(Schema(["a", "b"])) == hash(Schema(["b", "a"]))

    def test_project_and_rename(self):
        schema = Schema(["a", "b", "c"])
        assert schema.project(["c", "a"]).attributes == ("c", "a")
        with pytest.raises(SchemaError):
            schema.project(["z"])
        assert schema.rename({"a": "x"}).attribute_set == {"x", "b", "c"}

    def test_join_unions_attributes(self):
        assert Schema(["a", "b"]).join(Schema(["b", "c"])).attribute_set == {"a", "b", "c"}

    def test_compatibility(self):
        assert Schema(["a", "b"]).is_compatible_with(Schema(["b", "a"]))
        assert not Schema(["a"]).is_compatible_with(Schema(["a", "b"]))


class TestFromSortedItemsDebugMode:
    """The ``Tup._from_sorted_items`` fast path and its env-gated validation.

    The fast constructor trusts its caller (the physical kernels) and skips
    sorting/validation; ``REPRO_DEBUG_TUPLES=1`` (or flipping the module
    flag, as these tests do) re-enables the bypassed checks so a kernel bug
    surfaces as a :class:`SchemaError` instead of a malformed tuple.
    """

    @staticmethod
    def _debug(monkeypatch, enabled: bool):
        from repro.relations import tuples as tuples_module

        monkeypatch.setattr(tuples_module, "_DEBUG_TUPLES", enabled)

    def test_fast_path_equals_the_validating_constructor(self, monkeypatch):
        self._debug(monkeypatch, True)
        items = (("a", 1), ("b", "x"))
        fast = Tup._from_sorted_items(items)
        assert fast == Tup(a=1, b="x")
        assert hash(fast) == hash(Tup(a=1, b="x"))

    def test_debug_flags_unsorted_items(self, monkeypatch):
        self._debug(monkeypatch, True)
        with pytest.raises(SchemaError, match="not sorted"):
            Tup._from_sorted_items((("b", 1), ("a", 2)))

    def test_debug_flags_duplicate_attributes(self, monkeypatch):
        self._debug(monkeypatch, True)
        with pytest.raises(SchemaError, match="not sorted"):
            Tup._from_sorted_items((("a", 1), ("a", 2)))

    def test_debug_flags_non_string_attribute(self, monkeypatch):
        self._debug(monkeypatch, True)
        with pytest.raises(SchemaError, match="not a string"):
            Tup._from_sorted_items(((1, "x"),))

    def test_debug_flags_malformed_pairs(self, monkeypatch):
        self._debug(monkeypatch, True)
        with pytest.raises(SchemaError, match="malformed"):
            Tup._from_sorted_items((("a",),))
        with pytest.raises(SchemaError, match="tuple of pairs"):
            Tup._from_sorted_items([("a", 1)])

    def test_disabled_debug_skips_the_checks(self, monkeypatch):
        # The documented trade-off: without the flag the fast path accepts
        # whatever it is handed -- that is exactly why the debug mode exists.
        self._debug(monkeypatch, False)
        malformed = Tup._from_sorted_items((("b", 1), ("a", 2)))
        assert malformed._items == (("b", 1), ("a", 2))
