"""Regression tests for K-relation hashability and comparison semantics.

Two latent correctness bugs fixed in this PR:

* ``KRelation.__hash__`` used to hash the mutable ``_annotations`` dict, so
  a relation used as a dict/set key silently changed hash after ``add`` or
  ``merge_delta`` -- relations are now unhashable (``__hash__ = None``),
  like every other mutable container;
* ``equal_to``/``contained_in`` compared annotations across relations
  without checking semiring compatibility, so an ``N``-relation and a
  Tropical-relation with structurally equal annotation dicts (``2`` vs
  ``2.0``) compared "equal", and ``leq`` was applied to foreign carrier
  values -- cross-semiring comparisons now raise ``SemiringError``
  (``==`` stays non-raising and simply answers ``False``).
"""

from __future__ import annotations

import pytest

from repro import KRelation, NaturalsSemiring, SemiringError, TropicalSemiring


def _bag(rows):
    return KRelation(NaturalsSemiring(), ["a", "b"], rows)


def _tropical(rows):
    return KRelation(TropicalSemiring(), ["a", "b"], rows)


class TestUnhashability:
    def test_relations_are_unhashable(self):
        relation = _bag([(("1", "2"), 2)])
        with pytest.raises(TypeError, match="unhashable"):
            hash(relation)

    def test_relations_cannot_be_set_members_or_dict_keys(self):
        relation = _bag([(("1", "2"), 2)])
        with pytest.raises(TypeError, match="unhashable"):
            {relation}
        with pytest.raises(TypeError, match="unhashable"):
            {relation: "value"}

    def test_the_old_failure_mode_is_gone(self):
        # Before the fix this sequence produced a dict whose key could no
        # longer be found: the hash captured the annotations at insertion
        # time and add() changed them afterwards.
        relation = _bag([(("1", "2"), 2)])
        with pytest.raises(TypeError):
            index = {relation: "cached"}
            relation.add(("3", "4"), 1)
            assert index[relation]  # pragma: no cover - never reached


class TestCrossSemiringComparisons:
    def test_equal_to_raises_on_semiring_mismatch(self):
        # Structurally identical dicts: N's 2 == Tropical's 2.0 in Python.
        bag = _bag([(("1", "2"), 2)])
        tropical = _tropical([(("1", "2"), 2.0)])
        with pytest.raises(SemiringError, match="different semirings"):
            bag.equal_to(tropical)

    def test_contained_in_raises_on_semiring_mismatch(self):
        bag = _bag([(("1", "2"), 2)])
        tropical = _tropical([(("1", "2"), 2.0)])
        with pytest.raises(SemiringError, match="different semirings"):
            bag.contained_in(tropical)

    def test_dunder_eq_answers_false_without_raising(self):
        bag = _bag([(("1", "2"), 2)])
        tropical = _tropical([(("1", "2"), 2.0)])
        assert not (bag == tropical)
        assert bag != tropical

    def test_same_semiring_comparisons_still_work(self):
        left = _bag([(("1", "2"), 2)])
        right = _bag([(("1", "2"), 2)])
        assert left.equal_to(right)
        assert left == right
        assert left.contained_in(_bag([(("1", "2"), 3)]))
        assert not _bag([(("1", "2"), 3)]).contained_in(left)

    def test_non_relations_compare_unequal_not_error(self):
        relation = _bag([(("1", "2"), 2)])
        assert not relation.equal_to("not a relation")
        assert relation != "not a relation"
