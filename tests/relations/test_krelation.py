"""K-relations: finite-support annotated relations (Definition 3.1)."""

import pytest

from repro.errors import SchemaError, SemiringError
from repro.relations import Database, KRelation, Tup
from repro.semirings import (
    BooleanSemiring,
    IntegerRing,
    NaturalsSemiring,
    Polynomial,
    ProvenancePolynomialSemiring,
)


class TestConstruction:
    def test_rows_with_and_without_annotations(self):
        bag = NaturalsSemiring()
        relation = KRelation(bag, ["a", "b"], [("x", "y"), (("x", "z"), 3)])
        assert relation.annotation(("x", "y")) == 1
        assert relation.annotation(("x", "z")) == 3

    def test_rows_as_dicts_and_tups(self):
        bag = NaturalsSemiring()
        relation = KRelation(bag, ["a", "b"])
        relation.add({"a": 1, "b": 2}, 4)
        relation.add(Tup(a=1, b=3))
        assert relation.annotation(Tup(a=1, b=2)) == 4
        assert len(relation) == 2

    def test_schema_mismatch_rejected(self):
        bag = NaturalsSemiring()
        relation = KRelation(bag, ["a", "b"])
        with pytest.raises(SchemaError):
            relation.add(("only-one",))
        with pytest.raises(SchemaError):
            relation.add(Tup(a=1, c=2))

    def test_from_dict(self):
        bag = NaturalsSemiring()
        relation = KRelation.from_dict(bag, ["a"], {("x",): 2, ("y",): 3})
        assert relation.total_annotation() == 5


class TestSupportSemantics:
    def test_absent_tuples_have_zero_annotation(self):
        boolean = BooleanSemiring()
        relation = KRelation(boolean, ["a"], [("x",)])
        assert relation.annotation(("missing",)) is False
        assert ("missing",) not in relation

    def test_adding_zero_keeps_support_clean(self):
        bag = NaturalsSemiring()
        relation = KRelation(bag, ["a"])
        relation.add(("x",), 0)
        assert len(relation) == 0
        relation.set(("x",), 5)
        relation.set(("x",), 0)
        assert len(relation) == 0

    def test_add_accumulates_with_semiring_plus(self):
        bag = NaturalsSemiring()
        relation = KRelation(bag, ["a"])
        relation.add(("x",), 2)
        relation.add(("x",), 3)
        assert relation.annotation(("x",)) == 5

    def test_discard(self):
        bag = NaturalsSemiring()
        relation = KRelation(bag, ["a"], [(("x",), 2)])
        relation.discard(("x",))
        assert not relation

    def test_check_consistency(self):
        bag = NaturalsSemiring()
        relation = KRelation(bag, ["a"], [(("x",), 2)])
        relation.check_consistency()
        relation._annotations[Tup(a="bad")] = -1
        with pytest.raises(SemiringError):
            relation.check_consistency()


class TestTransformations:
    def test_map_annotations_drops_zeros(self):
        """Proposition 3.5's 'support may shrink but never increase'."""
        bag = NaturalsSemiring()
        relation = KRelation(bag, ["a"], [(("x",), 2), (("y",), 1)])
        halved = relation.map_annotations(lambda n: n // 2)
        assert halved.annotation(("x",)) == 1
        assert ("y",) not in halved

    def test_to_semiring_coercion(self):
        bag = NaturalsSemiring()
        relation = KRelation(bag, ["a"], [(("x",), 2)])
        boolean = relation.to_semiring(BooleanSemiring(), lambda n: n > 0)
        assert boolean.annotation(("x",)) is True

    def test_copy_is_independent(self):
        bag = NaturalsSemiring()
        relation = KRelation(bag, ["a"], [(("x",), 2)])
        clone = relation.copy()
        clone.set(("x",), 9)
        assert relation.annotation(("x",)) == 2

    def test_contained_in_uses_natural_order(self):
        bag = NaturalsSemiring()
        small = KRelation(bag, ["a"], [(("x",), 2)])
        large = KRelation(bag, ["a"], [(("x",), 5), (("y",), 1)])
        assert small.contained_in(large)
        assert not large.contained_in(small)


class TestMergeDelta:
    def test_new_and_changed_tuples_form_the_delta(self):
        bag = NaturalsSemiring()
        relation = KRelation(bag, ["a"], [(("x",), 2)])
        delta = relation.merge_delta(
            [(Tup(a="x"), 3), (Tup(a="y"), 1), (Tup(a="z"), 0)]
        )
        assert relation.annotation(("x",)) == 5
        assert relation.annotation(("y",)) == 1
        assert ("z",) not in relation
        assert dict(delta.items()) == {Tup(a="x"): 5, Tup(a="y"): 1}

    def test_idempotent_readds_produce_empty_delta(self):
        boolean = BooleanSemiring()
        relation = KRelation(boolean, ["a"], [("x",)])
        delta = relation.merge_delta([(Tup(a="x"), True)])
        assert len(delta) == 0
        assert relation.annotation(("x",)) is True

    def test_delta_carries_the_new_annotation(self):
        nx = ProvenancePolynomialSemiring()
        relation = KRelation(nx, ["a"], [(("x",), Polynomial.var("p"))])
        delta = relation.merge_delta([(Tup(a="x"), Polynomial.var("r"))])
        combined = Polynomial.var("p") + Polynomial.var("r")
        assert relation.annotation(("x",)) == combined
        assert delta.annotation(("x",)) == combined

    def test_exact_cancellation_drops_tuple_from_support(self):
        # Regression: a delta that cancels an annotation to zero must remove
        # the tuple (no stored zero), keeping check_consistency clean.
        ring = IntegerRing()
        relation = KRelation(ring, ["a"], [(("x",), 3), (("y",), 1)])
        delta = relation.merge_delta([(Tup(a="x"), -3), (Tup(a="y"), 2)])
        assert ("x",) not in relation
        assert relation.annotation(("x",)) == 0
        assert relation.support == frozenset({Tup(a="y")})
        relation.check_consistency()
        # the cancelled tuple cannot carry a zero in the returned delta
        assert dict(delta.items()) == {Tup(a="y"): 3}

    def test_cancellation_inside_materialized_view(self):
        from repro.incremental import MaterializedView, UpdateBatch

        ring = IntegerRing()
        database = Database(ring)
        database.create("R", ["a", "b"], [(("1", "2"), 2)])
        database.create("S", ["b", "c"], [(("2", "x"), 3)])
        from repro.algebra.ast import Q

        view = MaterializedView(
            Q.relation("R").join(Q.relation("S")).project("a", "c"), database
        )
        assert view.relation.annotation(("1", "x")) == 6
        # a negative insertion that exactly cancels the view annotation
        changed = view.apply(UpdateBatch(insertions={"R": [(("1", "2"), -2)]}))
        assert changed == {Tup(a="1", c="x"): 0}
        assert len(view.relation) == 0
        view.relation.check_consistency()
        database.relation("R").check_consistency()


class TestDatabase:
    def test_register_requires_matching_semiring(self):
        db = Database(NaturalsSemiring())
        foreign = KRelation(BooleanSemiring(), ["a"])
        with pytest.raises(SemiringError):
            db.register("R", foreign)

    def test_create_and_lookup(self):
        db = Database(NaturalsSemiring())
        db.create("R", ["a"], [(("x",), 2)])
        assert db["R"].annotation(("x",)) == 2
        assert "R" in db and len(db) == 1
        with pytest.raises(SchemaError):
            db.relation("S")

    def test_map_annotations_database_wide(self):
        db = Database(NaturalsSemiring())
        db.create("R", ["a"], [(("x",), 2)])
        boolean_db = db.map_annotations(lambda n: n > 0, BooleanSemiring())
        assert boolean_db.semiring.name == "B"
        assert boolean_db["R"].annotation(("x",)) is True


class TestDisplayAndProvenanceRelations:
    def test_to_table_renders_annotations(self):
        nx = ProvenancePolynomialSemiring()
        relation = KRelation(nx, ["a"], [(("x",), Polynomial.parse("2*p^2"))])
        table = relation.to_table()
        assert "2·p^2" in table
        assert "a" in table.splitlines()[0]

    def test_empty_relation_renders_placeholder(self):
        relation = KRelation(NaturalsSemiring(), ["a", "b"])
        assert "(empty)" in relation.to_table()
