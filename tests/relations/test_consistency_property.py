"""Property test: the stored-zero invariant survives arbitrary mutations.

Definition 3.1 requires a K-relation to store exactly its support -- no
tuple may carry a zero annotation, and every stored value must be a carrier
element.  ``add``, ``set``, ``discard`` and ``merge_delta`` each maintain
the invariant individually (the PR 3 cancellation regressions check
``merge_delta`` in isolation); this suite extends that to *arbitrary
interleavings* of all four mutators, with annotations drawn from the full
element strategy (zeros, ones, sums, products, and -- over rings --
negations, so exact cancellations occur regularly).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from strategies import DOMAIN, semiring_elements

from repro.relations.krelation import KRelation
from repro.semirings import get_semiring

#: Semirings whose mutation behaviour differs structurally: plain numeric,
#: idempotent lattice, symbolic, and the rings where cancellation to zero
#: is reachable through ordinary additions.
MUTATION_SEMIRING_NAMES = ("bag", "tropical", "posbool", "z", "zx")

ATTRIBUTES = ("a", "b")

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def _rows(draw):
    return tuple(draw(st.sampled_from(DOMAIN)) for _ in ATTRIBUTES)


@st.composite
def _operations(draw, semiring):
    """A random interleaving of add/set/discard/merge_delta operations."""
    operations = []
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        kind = draw(st.sampled_from(("add", "set", "discard", "merge_delta")))
        if kind == "discard":
            operations.append(("discard", draw(_rows()), None))
        elif kind == "merge_delta":
            updates = [
                (draw(_rows()), draw(semiring_elements(semiring)))
                for _ in range(draw(st.integers(min_value=0, max_value=4)))
            ]
            operations.append(("merge_delta", None, updates))
        else:
            operations.append(
                (kind, draw(_rows()), draw(semiring_elements(semiring)))
            )
    return operations


@pytest.mark.parametrize("semiring_name", MUTATION_SEMIRING_NAMES)
@given(data=st.data())
@SETTINGS
def test_check_consistency_after_arbitrary_interleavings(semiring_name, data):
    semiring = get_semiring(semiring_name)
    relation = KRelation(semiring, ATTRIBUTES)
    for kind, row, payload in data.draw(_operations(semiring), label="operations"):
        if kind == "add":
            relation.add(row, payload)
        elif kind == "set":
            relation.set(row, payload)
        elif kind == "discard":
            relation.discard(row)
        else:
            # merge_delta is the engines' fast path: canonical tuples and
            # carrier values, exactly what the coercing mutators produce.
            updates = [
                (relation._coerce_tuple(r), semiring.coerce(v)) for r, v in payload
            ]
            delta = relation.merge_delta(updates)
            delta.check_consistency()
        relation.check_consistency()


@pytest.mark.parametrize("semiring_name", ("z", "zx"))
@given(data=st.data())
@SETTINGS
def test_cancelling_additions_never_store_zero(semiring_name, data):
    """Over rings, a value and its negation must cancel cleanly everywhere."""
    semiring = get_semiring(semiring_name)
    relation = KRelation(semiring, ATTRIBUTES)
    row = data.draw(_rows(), label="row")
    value = data.draw(semiring_elements(semiring), label="value")
    relation.add(row, value)
    relation.add(row, semiring.negate(value))
    relation.check_consistency()
    assert row not in relation or not semiring.is_zero(relation.annotation(row))
    assert semiring.is_zero(relation.annotation(row))
