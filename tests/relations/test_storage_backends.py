"""Storage backends: selection, layout invariants, and the stored-zero sweep.

The physical layer behind :class:`KRelation` (``src/repro/relations/
storage.py``) must be observably interchangeable: the same finite-support
map, whichever backend holds it.  This file unit-tests the backend-specific
machinery the differential harnesses only exercise indirectly -- kind
resolution, the columnar store's parallel-array/position-index invariants,
swap-with-last deletion, the bulk ``extend_rows`` path -- plus the
Definition 3.1 stored-zero audit: every mutation path that can produce a
semiring zero (exact cancellation under a ring, zero-valued writes) must
drop the tuple from the support on **both** backends, and
``check_consistency`` must flag a zero that is smuggled past the relation
layer through the raw mapping view.
"""

from __future__ import annotations

import pytest

from repro.errors import SchemaError, SemiringError
from repro.relations.krelation import KRelation
from repro.relations.storage import (
    STORAGE_KINDS,
    ColumnarRowStore,
    DictRowStore,
    make_store,
    resolve_storage_kind,
)
from repro.relations.tuples import Tup
from repro.semirings import get_semiring

BACKENDS = STORAGE_KINDS


class TestResolveStorageKind:
    def test_default_is_row(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORAGE", raising=False)
        assert resolve_storage_kind(None) == "row"

    def test_environment_variable_sets_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE", "columnar")
        assert resolve_storage_kind(None) == "columnar"
        assert KRelation(get_semiring("bag"), ["a"]).storage == "columnar"

    @pytest.mark.parametrize(
        "alias, kind",
        [
            ("row", "row"),
            ("dict", "row"),
            ("rows", "row"),
            ("ROW", "row"),
            ("columnar", "columnar"),
            ("column", "columnar"),
            ("col", "columnar"),
            ("columns", "columnar"),
            ("  Columnar ", "columnar"),
        ],
    )
    def test_aliases_normalize(self, alias, kind):
        assert resolve_storage_kind(alias) == kind

    def test_store_instance_resolves_to_its_own_kind(self):
        assert resolve_storage_kind(DictRowStore()) == "row"
        assert resolve_storage_kind(ColumnarRowStore(["a"])) == "columnar"

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(SchemaError):
            resolve_storage_kind("vectorized")
        with pytest.raises(SchemaError):
            KRelation(get_semiring("bag"), ["a"], storage="paged")


def _tup(a, b):
    return Tup(a=a, b=b)


class TestColumnarStoreLayout:
    def _populated(self):
        store = ColumnarRowStore(["a", "b"])
        for i in range(4):
            store.set(_tup(f"x{i}", i), i + 1)
        return store

    def test_parallel_arrays_stay_aligned(self):
        store = self._populated()
        assert store.tuples == [_tup(f"x{i}", i) for i in range(4)]
        assert store.columns[0] == ["x0", "x1", "x2", "x3"]
        assert store.columns[1] == [0, 1, 2, 3]
        assert store.annotations == [1, 2, 3, 4]
        store.check(("a", "b"))

    def test_discard_swaps_last_row_into_the_hole(self):
        store = self._populated()
        assert store.discard(_tup("x1", 1))
        # x3 moved into position 1; arrays shrink by one and stay dense.
        assert store.tuples == [_tup("x0", 0), _tup("x3", 3), _tup("x2", 2)]
        assert store.columns[1] == [0, 3, 2]
        assert store.annotations == [1, 4, 3]
        assert store.get(_tup("x3", 3)) == 4
        assert not store.discard(_tup("x1", 1))
        store.check(("a", "b"))

    def test_extend_rows_equals_per_row_sets(self):
        bulk = ColumnarRowStore(["a", "b"])
        tuples = [_tup(f"y{i}", i) for i in range(5)]
        version_before = bulk.version
        bulk.extend_rows(
            tuples,
            [[f"y{i}" for i in range(5)], list(range(5))],
            [10 * i + 1 for i in range(5)],
        )
        assert bulk.version == version_before + 1  # one bump for the batch
        one_by_one = ColumnarRowStore(["a", "b"])
        for i, tup in enumerate(tuples):
            one_by_one.set(tup, 10 * i + 1)
        assert bulk.tuples == one_by_one.tuples
        assert bulk.columns == one_by_one.columns
        assert bulk.annotations == one_by_one.annotations
        assert all(bulk.get(tup) == one_by_one.get(tup) for tup in tuples)
        bulk.check(("a", "b"))

    def test_malformed_row_is_reported_by_check_not_a_crash(self):
        store = ColumnarRowStore(["a", "b"])
        store.set(Tup(c="stray"), 1)  # validation bypassed: wrong attributes
        with pytest.raises(SchemaError):
            store.check(("a", "b"))

    def test_copy_is_independent(self):
        store = self._populated()
        clone = store.copy()
        clone.set(_tup("extra", 99), 7)
        clone.discard(_tup("x0", 0))
        assert len(store) == 4
        assert store.get(_tup("x0", 0)) == 1
        assert _tup("extra", 99) not in store
        store.check(("a", "b"))
        clone.check(("a", "b"))

    def test_make_store_dispatches_on_kind(self):
        assert isinstance(make_store("row", ["a"]), DictRowStore)
        assert isinstance(make_store("columnar", ["a"]), ColumnarRowStore)


ALL_SEMIRING_NAMES = ("bag", "bool", "tropical", "posbool", "z", "nx", "circuit")


class TestWithStorageRoundTrip:
    @pytest.mark.parametrize("semiring_name", ALL_SEMIRING_NAMES)
    def test_round_trip_preserves_annotations(self, semiring_name):
        semiring = get_semiring(semiring_name)
        relation = KRelation(
            semiring,
            ["a", "b"],
            [(("1", "2"), semiring.one()), (("2", "3"), semiring.one())],
        )
        relation.add(("1", "2"), semiring.one())  # a combined annotation too
        columnar = relation.with_storage("columnar")
        assert columnar.storage == "columnar"
        columnar.check_consistency()
        back = columnar.with_storage("row")
        assert back.storage == "row"
        assert relation.equal_to(columnar)
        assert relation.equal_to(back)

    def test_same_kind_conversion_still_copies(self):
        relation = KRelation(get_semiring("bag"), ["a"], [(("1",), 2)])
        copy = relation.with_storage("row")
        copy.add(("1",), 1)
        assert relation.annotation(("1",)) == 2
        assert copy.annotation(("1",)) == 3


class TestStoredZeroSweep:
    """Every mutation path drops exact zeros from the support (Def. 3.1)."""

    @pytest.mark.parametrize("storage", BACKENDS)
    def test_add_cancellation_removes_the_tuple(self, storage):
        relation = KRelation(get_semiring("z"), ["a"], storage=storage)
        relation.add(("1",), 2)
        relation.add(("1",), -2)
        assert ("1",) not in relation
        assert len(relation) == 0
        relation.check_consistency()

    @pytest.mark.parametrize("storage", BACKENDS)
    def test_set_zero_removes_the_tuple(self, storage):
        relation = KRelation(get_semiring("z"), ["a"], [(("1",), 5)], storage=storage)
        relation.set(("1",), 0)
        assert ("1",) not in relation
        relation.check_consistency()

    @pytest.mark.parametrize("storage", BACKENDS)
    def test_accumulate_cancellation_removes_the_tuple(self, storage):
        relation = KRelation(get_semiring("z"), ["a"], storage=storage)
        tup = relation.add(("1",), 3)
        relation._accumulate(tup, -3)
        assert tup not in relation.support
        relation.check_consistency()

    @pytest.mark.parametrize("storage", BACKENDS)
    def test_merge_delta_cancellation_is_absent_from_the_delta(self, storage):
        relation = KRelation(get_semiring("z"), ["a"], [(("1",), 2)], storage=storage)
        tup = relation._coerce_tuple(("1",))
        other = relation._coerce_tuple(("2",))
        delta = relation.merge_delta([(tup, -2), (other, 4)])
        assert tup not in relation
        assert relation.annotation(other) == 4
        # the cancelled tuple left the support, so it cannot be in the delta
        assert set(delta.support) == {other}
        relation.check_consistency()
        delta.check_consistency()

    @pytest.mark.parametrize("storage", BACKENDS)
    def test_zero_update_of_an_absent_tuple_is_a_noop(self, storage):
        relation = KRelation(get_semiring("z"), ["a"], storage=storage)
        tup = relation._coerce_tuple(("9",))
        delta = relation.merge_delta([(tup, 0)])
        assert len(relation) == 0 and len(delta) == 0
        relation.add(("9",), 0)
        assert len(relation) == 0
        relation.check_consistency()

    @pytest.mark.parametrize("storage", BACKENDS)
    def test_check_consistency_flags_a_smuggled_stored_zero(self, storage):
        relation = KRelation(get_semiring("z"), ["a"], [(("1",), 1)], storage=storage)
        # The raw mapping view bypasses the relation layer's zero handling;
        # the audit must catch what slips through it on either backend.
        relation._annotations[relation._coerce_tuple(("1",))] = 0
        with pytest.raises(SemiringError, match="stored zero"):
            relation.check_consistency()

    @pytest.mark.parametrize("storage", BACKENDS)
    def test_check_consistency_flags_a_foreign_annotation(self, storage):
        relation = KRelation(get_semiring("bag"), ["a"], storage=storage)
        relation._annotations[relation._coerce_tuple(("1",))] = -3
        with pytest.raises(SemiringError):
            relation.check_consistency()
