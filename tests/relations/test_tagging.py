"""Abstract tagging (the R-bar construction behind Theorem 4.3)."""

import pytest

from repro.relations import Database, KRelation, abstractly_tag, abstractly_tag_database
from repro.semirings import NaturalsSemiring, Polynomial
from repro.workloads import figure3_bag_database, figure5_provenance_ids


def test_abstract_tagging_preserves_support_and_records_valuation():
    bag = NaturalsSemiring()
    relation = KRelation(bag, ["a"], [(("x",), 2), (("y",), 5)])
    tagged, valuation, tuple_ids = abstractly_tag(relation, relation_name="R")
    assert len(tagged) == 2
    assert set(valuation.values()) == {2, 5}
    # every annotation is a distinct single variable
    variables = {str(annotation) for annotation in tagged.annotations()}
    assert len(variables) == 2
    assert all(isinstance(a, Polynomial) for a in tagged.annotations())
    assert set(tuple_ids.values()) == set(valuation.keys())


def test_explicit_ids_are_respected():
    db = figure3_bag_database()
    tagged = abstractly_tag_database(db, ids=figure5_provenance_ids())
    assert set(tagged.valuation) == {"p", "r", "s"}
    assert tagged.valuation["r"] == 5
    assert tagged.variable_for("R", ("d", "b", "e")) == "r"
    assert tagged.tuple_for("p")[0] == "R"


def test_duplicate_ids_rejected():
    bag = NaturalsSemiring()
    relation = KRelation(bag, ["a"], [(("x",), 1), (("y",), 1)])
    with pytest.raises(ValueError):
        abstractly_tag(relation, ids={("x",): "t", ("y",): "t"})


def test_ids_unique_across_relations():
    bag = NaturalsSemiring()
    db = Database(bag)
    db.create("R", ["a"], [(("x",), 1)])
    db.create("S", ["a"], [(("y",), 1)])
    with pytest.raises(ValueError):
        abstractly_tag_database(db, ids={"R": {("x",): "t"}, "S": {("y",): "t"}})
    tagged = abstractly_tag_database(db)
    assert len(tagged.valuation) == 2
