"""``Circ[X]`` as a drop-in annotation semiring.

Circuit equality is structural (hash-consed), so the semiring laws hold
*semantically*: both sides of each law must expand to the same ``N[X]``
polynomial (commutativity even holds structurally, since children are kept
sorted).  That is the same notion of correctness the paper uses for
``N[X]`` itself -- circuits are just a smaller presentation of it.
"""

import random

import pytest

from repro.circuits import (
    CircuitSemiring,
    circuit_evaluation,
    from_polynomial,
    node_count,
    to_polynomial,
)
from repro.errors import InvalidAnnotationError
from repro.relations.krelation import KRelation
from repro.relations.tagging import abstractly_tag
from repro.semirings import (
    NaturalsSemiring,
    Polynomial,
    PosBoolSemiring,
    check_homomorphism,
    get_semiring,
)
from repro.semirings.numeric import INFINITY

CIRC = CircuitSemiring()


def random_circuit(rng: random.Random, depth: int = 0):
    """A random circuit over variables p, q, r with small constants."""
    if depth >= 4 or rng.random() < 0.35:
        return rng.choice(
            [CIRC.var("p"), CIRC.var("q"), CIRC.var("r"), CIRC.coerce(rng.randint(0, 3))]
        )
    left = random_circuit(rng, depth + 1)
    right = random_circuit(rng, depth + 1)
    return CIRC.add(left, right) if rng.random() < 0.5 else CIRC.mul(left, right)


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_semiring_laws_hold_semantically(seed):
    rng = random.Random(seed)
    samples = [random_circuit(rng) for _ in range(6)]
    P = to_polynomial
    for a in samples:
        assert P(CIRC.add(a, CIRC.zero())) == P(a)
        assert P(CIRC.mul(a, CIRC.one())) == P(a)
        assert P(CIRC.mul(a, CIRC.zero())) == Polynomial.zero()
        for b in samples:
            # commutativity is structural
            assert CIRC.add(a, b) is CIRC.add(b, a)
            assert CIRC.mul(a, b) is CIRC.mul(b, a)
            for c in samples[:3]:
                assert P(CIRC.add(CIRC.add(a, b), c)) == P(CIRC.add(a, CIRC.add(b, c)))
                assert P(CIRC.mul(CIRC.mul(a, b), c)) == P(CIRC.mul(a, CIRC.mul(b, c)))
                assert P(CIRC.mul(a, CIRC.add(b, c))) == P(
                    CIRC.add(CIRC.mul(a, b), CIRC.mul(a, c))
                )


def test_identity_checks_are_exact():
    assert CIRC.is_zero(CIRC.zero()) and not CIRC.is_zero(CIRC.one())
    assert CIRC.is_one(CIRC.one()) and not CIRC.is_one(CIRC.var("p"))
    # is_zero survives round trips through the operations
    assert CIRC.is_zero(CIRC.mul(CIRC.var("p"), CIRC.zero()))
    assert CIRC.is_one(CIRC.mul(CIRC.one(), CIRC.one()))


def test_coerce_accepts_the_usual_surrogates():
    assert CIRC.coerce(True) is CIRC.one()
    assert CIRC.coerce(False) is CIRC.zero()
    assert to_polynomial(CIRC.coerce(3)) == Polynomial.constant(3)
    assert to_polynomial(CIRC.coerce("p")) == Polynomial.var("p")
    assert to_polynomial(CIRC.coerce("2*p^2 + r*s")) == Polynomial.parse("2*p^2 + r*s")
    assert to_polynomial(CIRC.coerce(Polynomial.parse("p + r"))) == Polynomial.parse("p + r")
    assert to_polynomial(CIRC.coerce(INFINITY)) == Polynomial.constant(INFINITY)
    with pytest.raises(InvalidAnnotationError):
        CIRC.coerce(2.5)


def test_from_int_scale_power_build_compact_circuits():
    p = CIRC.var("p")
    assert to_polynomial(CIRC.from_int(4)) == Polynomial.constant(4)
    assert to_polynomial(CIRC.scale(3, p)) == Polynomial.parse("3*p")
    assert to_polynomial(CIRC.power(p, 3)) == Polynomial.parse("p^3")
    assert CIRC.power(p, 0) is CIRC.one()
    # scale builds one Const·p product, not a 3-term sum
    assert node_count(CIRC.scale(3, p)) == 3


def test_leq_matches_polynomial_natural_order():
    p, r = CIRC.var("p"), CIRC.var("r")
    assert CIRC.leq(p, CIRC.add(p, r))
    assert not CIRC.leq(CIRC.add(p, r), p)


def test_polynomial_round_trip():
    for text in ["0", "1", "p", "2*p^2 + r*s", "p + r + 3"]:
        polynomial = Polynomial.parse(text)
        assert to_polynomial(from_polynomial(polynomial)) == polynomial


def test_registered_in_the_semiring_registry():
    assert isinstance(get_semiring("circuit"), CircuitSemiring)
    assert isinstance(get_semiring("circ"), CircuitSemiring)
    assert isinstance(get_semiring("provenance-circuit"), CircuitSemiring)


def test_circuit_evaluation_is_a_homomorphism():
    rng = random.Random(7)
    samples = [random_circuit(rng) for _ in range(5)]
    eval_n = circuit_evaluation(NaturalsSemiring(), {"p": 2, "q": 3, "r": 5})
    assert not check_homomorphism(eval_n, samples)
    eval_posbool = circuit_evaluation(PosBoolSemiring(), {"p": "b1", "q": "b2", "r": "b3"})
    assert not check_homomorphism(eval_posbool, samples)


def test_format_value_switches_to_summary_for_large_circuits():
    small = CIRC.add(CIRC.var("p"), CIRC.var("r"))
    assert CIRC.format_value(small) in ("p + r", "r + p")
    big = CIRC.one()
    for i in range(40):
        big = CIRC.add(CIRC.mul(big, CIRC.var(f"v{i}")), CIRC.var(f"w{i}"))
    text = CIRC.format_value(big)
    assert "circuit" in text and "nodes" in text and "depth" in text


def test_display_summarizes_wide_annotations():
    relation = KRelation(CIRC, ["a"])
    # Small DAG (renders in full) whose text form is still wide: the width
    # cap, not the node-count limit, must trigger the summary.
    annotation = CIRC.one()
    for i in range(5):
        annotation = CIRC.mul(
            annotation, CIRC.add(CIRC.var(f"long_variable_x{i}"), CIRC.var(f"long_variable_y{i}"))
        )
    relation.set(("t1",), annotation)
    assert "long_variable_x0" in relation.to_table()
    capped = relation.to_table(max_annotation_width=40)
    assert "⟨circuit:" in capped and "long_variable_x0" not in capped


def test_abstract_tagging_into_the_circuit_semiring():
    bag = NaturalsSemiring()
    relation = KRelation(bag, ["a", "b"], [(("1", "2"), 2), (("2", "3"), 5)])
    tagged, valuation, tuple_ids = abstractly_tag(relation, semiring=CIRC)
    assert tagged.semiring is CIRC
    assert set(valuation.values()) == {2, 5}
    for tup, annotation in tagged.items():
        assert to_polynomial(annotation) == Polynomial.var(tuple_ids[("R", tup)])


def test_krelation_algebra_runs_unchanged_over_circuits():
    r = KRelation(CIRC, ["a", "b"])
    r.set(("1", "2"), CIRC.var("p"))
    r.set(("2", "3"), CIRC.var("r"))
    s = KRelation(CIRC, ["b", "c"])
    s.set(("2", "9"), CIRC.var("s"))
    joined = r.join(s)
    assert len(joined) == 1
    assert to_polynomial(joined.annotation({"a": "1", "b": "2", "c": "9"})) == Polynomial.parse("p*s")
    projected = joined.project(["a"]).union(r.project(["a"]))
    assert to_polynomial(projected.annotation({"a": "1"})) == Polynomial.parse("p*s + p")
