"""The knowledge-compilation property layer: negation/decision nodes and the
structural checks of the Darwiche-Marquis map (decomposability, determinism,
smoothness)."""

import pickle

import pytest

from repro.circuits import (
    ONE,
    ZERO,
    Decision,
    Not,
    check_ddnnf,
    classify,
    decision_node,
    is_decomposable,
    is_deterministic,
    is_smooth,
    iter_nodes,
    node_count,
    not_node,
    prod_node,
    render,
    smooth,
    sum_node,
    to_nnf,
    var,
    wmc,
)
from repro.errors import SemiringError


class TestNewNodes:
    def test_not_node_is_interned_and_involutive(self):
        assert not_node(var("x")) is not_node(var("x"))
        assert not_node(not_node(var("x"))) is var("x")

    def test_not_node_on_constants_flips(self):
        assert not_node(ZERO) is ONE
        assert not_node(ONE) is ZERO

    def test_not_node_rejects_interior_gates(self):
        with pytest.raises(Exception):
            not_node(sum_node(var("x"), var("y")))

    def test_decision_node_interned_and_collapsing(self):
        d = decision_node("x", ONE, ZERO)
        assert decision_node("x", ONE, ZERO) is d
        # ite(x, f, f) = f -- the BDD reduction rule.
        assert decision_node("x", var("y"), var("y")) is var("y")
        # collapse=False keeps the redundant test (used by smoothing).
        kept = decision_node("x", var("y"), var("y"), collapse=False)
        assert isinstance(kept, Decision)

    def test_traversal_and_render_cover_new_nodes(self):
        d = decision_node("x", var("y"), not_node(var("y")))
        kinds = {type(n).__name__ for n in iter_nodes(d)}
        assert "Decision" in kinds and "Not" in kinds
        text = render(d)
        assert "ite(" in text and "¬" in text

    def test_pickle_round_trip_preserves_interning(self):
        d = decision_node("x", not_node(var("y")), decision_node("y", ONE, ZERO))
        clone = pickle.loads(pickle.dumps(d))
        assert clone is d


class TestStructuralProperties:
    def test_decomposable_product_detected(self):
        good = prod_node(var("x"), var("y"))
        bad = prod_node(var("x"), sum_node(var("x"), var("y")))
        assert is_decomposable(good)
        assert not is_decomposable(bad)

    def test_deterministic_sum_detected(self):
        # x·y + x·¬y: disjoint on y -> deterministic.
        good = sum_node(
            prod_node(var("x"), var("y")),
            prod_node(var("x"), not_node(var("y"))),
        )
        bad = sum_node(var("x"), var("y"))  # both true in a shared model
        assert is_deterministic(good)
        assert not is_deterministic(bad)

    def test_smoothness_detected(self):
        rough = sum_node(
            prod_node(var("x"), var("y")),
            prod_node(var("x"), not_node(var("y"))),
        )
        assert is_smooth(rough)  # both disjuncts mention {x, y}
        uneven = sum_node(prod_node(var("x"), var("y")), var("x"))
        assert not is_smooth(uneven)

    def test_classify_and_check(self):
        d = decision_node("x", decision_node("y", ONE, ZERO), ZERO)
        props = classify(d)
        assert props["decomposable"] and props["deterministic"]
        check_ddnnf(d)  # must not raise
        with pytest.raises(SemiringError):
            check_ddnnf(sum_node(var("x"), var("x")))


class TestSmoothAndNNF:
    def test_smooth_fills_skipped_levels(self):
        # Decides only x; smoothing over (x, y) must test y on every path.
        d = decision_node("x", ONE, ZERO)
        smoothed = smooth(d, ("x", "y"))
        assert is_smooth(smoothed, variables={"x", "y"})
        weights = {"x": 0.3, "y": 0.9}
        assert wmc(smoothed, weights) == pytest.approx(wmc(d, weights))

    def test_smooth_rejects_unordered_diagrams(self):
        inner = decision_node("x", ONE, ZERO)
        outer = decision_node("y", inner, ZERO)
        with pytest.raises(SemiringError):
            smooth(outer, ("x", "y"))  # y decided before x

    def test_to_nnf_expands_decisions(self):
        d = decision_node("x", decision_node("y", ONE, ZERO), ZERO)
        nnf = to_nnf(d)
        assert not any(isinstance(n, Decision) for n in iter_nodes(nnf))
        weights = {"x": 0.25, "y": 0.5}
        assert wmc(nnf, weights) == pytest.approx(wmc(d, weights))
        # The expansion is deterministic and decomposable, so still a d-DNNF.
        check_ddnnf(nnf)

    def test_node_count_counts_shared_nodes_once(self):
        shared = decision_node("y", ONE, ZERO)
        d = decision_node("x", shared, decision_node("z", shared, ZERO))
        assert node_count(d) == len(list(iter_nodes(d)))
