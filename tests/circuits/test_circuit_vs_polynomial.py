"""Circuit/polynomial agreement on real queries (Prop. 4.2 / Thms 4.3, 6.4).

Property-style checks: the *same* RA query or datalog program, run once over
``N[X]`` and once over ``Circ[X]`` with identical tuple ids, must produce
annotations with ``to_polynomial(circuit) == polynomial`` tuple for tuple,
and identical ``Eval_v`` results in N (bag), Tropical, PosBool and the
probabilistic event semiring.
"""

import random

import pytest

from repro.algebra import Q
from repro.circuits import CircuitSemiring, specialize, to_polynomial
from repro.datalog import (
    all_trees,
    datalog_circuit_provenance,
    datalog_provenance,
    evaluate,
)
from repro.errors import DatalogError
from repro.relations.tagging import abstractly_tag_database
from repro.semirings import (
    EventSemiring,
    EventSpace,
    NaturalsSemiring,
    PosBoolSemiring,
    TropicalSemiring,
)
from repro.semirings.posbool import BoolExpr
from repro.workloads import (
    figure6_database,
    figure6_program,
    figure7_database,
    figure7_edb_ids,
    figure7_program,
    random_graph_database,
    star_join_database,
    transitive_closure_program,
)

CIRC = CircuitSemiring()


def random_query(rng: random.Random):
    """A random positive-RA query over the star schema F(a,b,c), D1(a,x), D2(b,y)."""
    query = Q.relation("F")
    if rng.random() < 0.8:
        query = query.join(Q.relation("D1"))
    if rng.random() < 0.8:
        query = query.join(Q.relation("D2"))
    if rng.random() < 0.5:
        query = query.union(query)
    attributes = rng.choice([("a", "b"), ("a",), ("a", "b", "c")])
    return query.project(*attributes)


def tagged_pair(database):
    """The same database abstractly tagged as polynomials and as circuits."""
    poly_tagged = abstractly_tag_database(database)
    circ_tagged = abstractly_tag_database(database, semiring=CIRC)
    assert set(poly_tagged.valuation) == set(circ_tagged.valuation)
    return poly_tagged, circ_tagged


def _targets(valuation):
    """Target semirings + valuations for the Eval_v agreement checks."""
    variables = sorted(valuation)
    worlds = {f"w{i}": 1 / (len(variables) + 1) for i in range(len(variables) + 1)}
    space = EventSpace(worlds, normalize=True)
    event_names = sorted(worlds)
    return [
        (NaturalsSemiring(), {x: i + 2 for i, x in enumerate(variables)}),
        (TropicalSemiring(), {x: float(i % 7) for i, x in enumerate(variables)}),
        (PosBoolSemiring(), {x: BoolExpr.var(x) for x in variables}),
        (
            EventSemiring(space),
            {
                x: frozenset(event_names[: (i % len(event_names)) + 1])
                for i, x in enumerate(variables)
            },
        ),
    ]


@pytest.mark.parametrize("seed", [11, 23, 37, 51])
def test_random_ra_queries_agree(seed):
    rng = random.Random(seed)
    database = star_join_database(
        NaturalsSemiring(), fact_tuples=25, dimension_tuples=8, domain_size=6, seed=seed
    )
    poly_tagged, circ_tagged = tagged_pair(database)
    for _ in range(3):
        query = random_query(rng)
        poly_result = query.evaluate(poly_tagged.database)
        circ_result = query.evaluate(circ_tagged.database)
        assert poly_result.support == circ_result.support
        assert len(poly_result) > 0
        for tup in poly_result.support:
            assert to_polynomial(circ_result[tup]) == poly_result[tup]
        for target, valuation in _targets(poly_tagged.valuation):
            specialized = specialize(circ_result, target, valuation)
            expected = poly_result.map_annotations(
                lambda p: p.evaluate(target, valuation), target
            )
            assert specialized.equal_to(expected)


def test_figure6_datalog_program_agrees():
    database = figure6_database()
    prov = datalog_circuit_provenance(figure6_program(), database)
    trees = all_trees(figure6_program(), database)
    assert not prov.divergent
    assert prov.to_polynomials() == dict(trees.polynomials)
    # Evaluating the circuits at the original multiplicities reproduces the
    # bag fixpoint (Theorem 6.4 on the acyclic program).
    bag = NaturalsSemiring()
    valuation = {
        name: database.relation(atom.relation).annotation(atom.values)
        for atom, name in prov.edb_ids.items()
    }
    values = prov.evaluate(bag, valuation)
    direct = evaluate(figure6_program(), database)
    for atom, value in values.items():
        if atom.relation == prov.ground.program.output:
            assert value == direct.annotation(atom.values)


def test_figure7_datalog_program_agrees_on_convergent_atoms():
    database = figure7_database()
    prov = datalog_circuit_provenance(
        figure7_program(), database, edb_ids=figure7_edb_ids()
    )
    trees = all_trees(figure7_program(), database, edb_ids=figure7_edb_ids())
    assert prov.divergent == trees.infinite
    assert prov.to_polynomials() == dict(trees.polynomials)
    # The convergent Figure 7 provenance: Q(a,b) = m + n·p.
    assert str(to_polynomial(prov.provenance(("a", "b")))) == "m + n·p"
    with pytest.raises(DatalogError):
        prov.provenance(("b", "d"))  # passes through the cycle: series territory


def test_datalog_provenance_circuit_option_dispatches():
    database = figure7_database()
    prov = datalog_provenance(
        figure7_program(), database, edb_ids=figure7_edb_ids(), provenance="circuit"
    )
    assert hasattr(prov, "circuits")
    with pytest.raises(DatalogError):
        datalog_provenance(figure7_program(), database, provenance="nope")


@pytest.mark.parametrize("linear", [True, False], ids=["linear", "quadratic"])
def test_transitive_closure_on_random_graphs_agrees(linear):
    database = random_graph_database(
        NaturalsSemiring(), nodes=9, edge_probability=0.18, seed=3
    )
    program = transitive_closure_program(linear=linear)
    prov = datalog_circuit_provenance(program, database)
    trees = all_trees(program, database)
    assert prov.divergent == trees.infinite
    assert prov.to_polynomials() == dict(trees.polynomials)
    for target, valuation in _targets(
        {name: 1 for name in prov.edb_ids.values()}
    ):
        circuit_values = prov.evaluate(target, valuation)
        for atom, value in circuit_values.items():
            expected = trees.polynomials[atom].evaluate(target, valuation)
            assert value == expected


def test_algebraic_system_solve_honors_skip_mode():
    """solve() must match the fixpoint engine's on_divergence vocabulary."""
    from repro.datalog import build_algebraic_system
    from repro.relations.database import Database

    database = Database(NaturalsSemiring())
    database.create("E", ["x"], [("a",)])
    program = "P(x) :- E(x)\nP(x) :- P(x)\nOut(x) :- P(x)"
    from repro.datalog.syntax import Program

    system = build_algebraic_system(Program.parse(program, output="Out"), database)
    # N has no top: skip keeps nothing here (everything routes through the cycle)...
    solution = system.solve(NaturalsSemiring(), on_divergence="skip")
    assert solution == {}
    # ...and unknown modes are rejected instead of silently meaning "top".
    with pytest.raises(ValueError):
        system.solve(NaturalsSemiring(), on_divergence="meh")
    # Parity with the engine on Figure 7: same kept atoms, same values.
    from repro.datalog import evaluate_program

    n_db = figure7_database(NaturalsSemiring())
    engine = evaluate_program(figure7_program(), n_db, on_divergence="skip")
    fig7_system = build_algebraic_system(figure7_program(), n_db)
    fig7_solution = fig7_system.solve(NaturalsSemiring(), on_divergence="skip")
    assert fig7_solution == dict(engine.annotations)


def test_fixpoint_skip_mode_keeps_only_convergent_atoms():
    """on_divergence='skip' in the engine: exact values for the acyclic part."""
    from repro.datalog import evaluate_program

    database = figure7_database(NaturalsSemiring())
    program = figure7_program()
    result = evaluate_program(program, database, on_divergence="skip")
    assert result.divergent_atoms  # the cycle through d
    assert all(atom not in result.annotations for atom in result.divergent_atoms)
    # Convergent multiplicities match the N∞ run (which uses top for the rest).
    from repro.semirings import CompletedNaturalsSemiring

    natinf_result = evaluate_program(
        program, figure7_database(CompletedNaturalsSemiring())
    )
    for atom, value in result.annotations.items():
        assert natinf_result.annotations[atom].finite_value() == value
