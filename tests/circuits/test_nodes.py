"""Hash-consed circuit nodes: interning, simplification, metrics."""

import pytest

from repro.circuits import (
    ONE,
    ZERO,
    Const,
    Prod,
    Sum,
    Var,
    circuit_depth,
    circuit_variables,
    const,
    iter_nodes,
    node_count,
    prod_node,
    render,
    sum_node,
    var,
)
from repro.errors import InvalidAnnotationError
from repro.semirings.numeric import INFINITY, NatInf


def test_interning_returns_identical_objects():
    assert var("x") is var("x")
    assert const(3) is const(3)
    a, b = var("a"), var("b")
    assert sum_node(a, b) is sum_node(a, b)
    assert prod_node(a, b) is prod_node(a, b)
    assert var("x") is not var("y")


def test_constructors_are_commutative():
    a, b, c = var("a"), var("b"), var("c")
    assert sum_node(a, b) is sum_node(b, a)
    assert prod_node(a, c) is prod_node(c, a)


def test_local_simplifications():
    x = var("x")
    assert sum_node(ZERO, x) is x          # 0 + x = x
    assert sum_node(x, ZERO) is x
    assert prod_node(ONE, x) is x          # 1 · x = x
    assert prod_node(x, ONE) is x
    assert prod_node(ZERO, x) is ZERO      # 0 · x = 0
    assert sum_node() is ZERO              # empty sum
    assert prod_node() is ONE              # empty product


def test_constant_folding():
    assert sum_node(const(2), const(3)) is const(5)
    assert prod_node(const(2), const(3)) is const(6)
    x = var("x")
    folded = sum_node(const(2), x, const(3))
    assert isinstance(folded, Sum)
    assert const(5) in folded.children and x in folded.children


def test_constants_canonicalize_bool_and_finite_natinf_to_int():
    assert const(True) is const(1) is ONE
    assert const(NatInf(4)) is const(4)
    assert const(INFINITY).value is INFINITY or const(INFINITY).value == INFINITY


def test_infinite_constant_arithmetic():
    assert sum_node(const(INFINITY), const(1)) is const(INFINITY)
    assert prod_node(const(INFINITY), ZERO) is ZERO  # ∞ · 0 = 0
    assert prod_node(const(INFINITY), const(2)) is const(INFINITY)


def test_invalid_inputs_rejected():
    with pytest.raises(InvalidAnnotationError):
        const(-1)
    with pytest.raises(InvalidAnnotationError):
        const(2.5)
    with pytest.raises(InvalidAnnotationError):
        var("")
    with pytest.raises(InvalidAnnotationError):
        sum_node(var("x"), "not a node")


def test_dag_sharing_metrics():
    a, b = var("a"), var("b")
    shared = sum_node(a, b)
    # (a+b)·(a+b) shares one Sum node: {a, b, a+b, product} = 4 nodes.
    square = prod_node(shared, shared)
    assert isinstance(square, Prod)
    assert node_count(square) == 4
    assert circuit_depth(square) == 2
    assert circuit_variables(square) == {"a", "b"}
    assert len(list(iter_nodes(square))) == 4
    # Multi-root count with sharing: nothing new reachable from `shared`.
    assert node_count(square, shared) == 4


def test_leaf_metrics():
    assert node_count(var("x")) == 1
    assert circuit_depth(var("x")) == 0
    assert circuit_variables(const(7)) == frozenset()


def test_render():
    a, b, c = var("a"), var("b"), var("c")
    assert render(sum_node(a, b)) in ("a + b", "b + a")
    product = prod_node(sum_node(a, b), c)
    text = render(product)
    assert "(" in text and "·" in text
    assert str(ZERO) == "0" and str(ONE) == "1"


def test_deep_chains_do_not_hit_the_recursion_limit():
    node = var("x0")
    for i in range(1, 3000):
        node = sum_node(prod_node(node, var(f"x{i}")), ONE)
    assert circuit_depth(node) == 2 * 2999
    assert node_count(node) > 3000
    assert "x2999" in circuit_variables(node)


def test_node_ids_are_stable_and_ordered():
    a = var("fresh_a_for_id_test")
    b = var("fresh_b_for_id_test")
    assert a.node_id != b.node_id
    s = sum_node(a, b)
    assert tuple(child.node_id for child in s.children) == tuple(
        sorted(child.node_id for child in s.children)
    )
