"""Shannon compilation to ordered decision diagrams: correctness against
brute-force enumeration, structural guarantees, caches, and the interaction
with the PR 8 deletion homomorphism (vars -> 0)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    ONE,
    ZERO,
    CircuitCompiler,
    Const,
    Decision,
    check_ddnnf,
    choose_variable_order,
    compile_circuit,
    eval_circuit,
    iter_nodes,
    prod_node,
    restrict_vars,
    specialize,
    sum_node,
    var,
    wmc,
)
from repro.circuits.compile import clear_compile_cache
from repro.errors import SemiringError
from repro.obs.metrics import compilation
from repro.semirings.numeric import NaturalsSemiring
from repro.semirings.posbool import BoolExpr

NAMES = ("a", "b", "c", "d")
NATURALS = NaturalsSemiring()


@st.composite
def circuits(draw, depth: int = 3):
    """Small random N-circuits over a fixed four-variable pool."""
    if depth == 0 or draw(st.integers(min_value=0, max_value=3)) == 0:
        return var(draw(st.sampled_from(NAMES)))
    op = sum_node if draw(st.booleans()) else prod_node
    width = draw(st.integers(min_value=1, max_value=3))
    return op(*(draw(circuits(depth=depth - 1)) for _ in range(width)))


def truth(circuit, assignment):
    """The Boolean abstraction: non-zero under a 0/1 valuation."""
    valuation = {name: (1 if assignment.get(name) else 0) for name in NAMES}
    return int(eval_circuit(circuit, valuation, NATURALS)) > 0


def decide(root, assignment):
    """Follow a decision diagram to its leaf under an assignment."""
    node = root
    while isinstance(node, Decision):
        node = node.hi if assignment.get(node.name) else node.lo
    assert isinstance(node, Const)
    return node.value != 0


def all_assignments(names):
    for bits in itertools.product([False, True], repeat=len(names)):
        yield dict(zip(names, bits))


class TestCompilerCorrectness:
    @settings(max_examples=60, deadline=None)
    @given(circuits())
    def test_compiled_function_equals_source(self, circuit):
        compiled = compile_circuit(circuit, check=True)
        for assignment in all_assignments(NAMES):
            assert decide(compiled.root, assignment) == truth(circuit, assignment)

    @settings(max_examples=40, deadline=None)
    @given(circuits(), st.randoms(use_true_random=False))
    def test_wmc_matches_enumeration(self, circuit, rng):
        compiled = compile_circuit(circuit)
        weights = {name: rng.random() for name in NAMES}
        expected = 0.0
        for assignment in all_assignments(compiled.order):
            if decide(compiled.root, assignment):
                p = 1.0
                for name in compiled.order:
                    p *= weights[name] if assignment[name] else 1 - weights[name]
                expected += p
        assert compiled.wmc(weights) == pytest.approx(expected, abs=1e-12)

    def test_output_is_a_strictly_ordered_diagram(self):
        circuit = sum_node(
            prod_node(var("a"), var("b")),
            prod_node(var("b"), var("c"), var("d")),
        )
        compiled = compile_circuit(circuit, check=True)
        index = {name: i for i, name in enumerate(compiled.order)}
        for node in iter_nodes(compiled.root):
            assert isinstance(node, (Decision, Const))
            if isinstance(node, Decision):
                for branch in (node.hi, node.lo):
                    if isinstance(branch, Decision):
                        assert index[branch.name] > index[node.name]

    def test_posbool_conditions_compile(self):
        condition = (BoolExpr.var("a") & BoolExpr.var("b")) | BoolExpr.var("c")
        compiled = compile_circuit(condition)
        for assignment in all_assignments(("a", "b", "c")):
            expected = (assignment["a"] and assignment["b"]) or assignment["c"]
            assert decide(compiled.root, assignment) == expected

    def test_constants_compile_to_leaves(self):
        assert compile_circuit(ZERO).root is ZERO
        assert compile_circuit(ONE).root is ONE
        assert compile_circuit(sum_node(ONE, var("a"))).root is ONE


class TestOrdersAndCaches:
    def test_order_models(self):
        circuit = prod_node(sum_node(var("a"), var("b")), var("c"))
        dfs = choose_variable_order(circuit, model="dfs")
        assert set(dfs) == {"a", "b", "c"}
        # Deterministic: the same circuit always yields the same order.
        assert choose_variable_order(circuit, model="dfs") == dfs
        freq = choose_variable_order(circuit, model="frequency")
        assert set(freq) == {"a", "b", "c"}
        with pytest.raises(SemiringError):
            choose_variable_order(circuit, model="mystery")

    def test_explicit_order_is_respected(self):
        circuit = sum_node(prod_node(var("a"), var("b")), var("c"))
        compiled = compile_circuit(circuit, order=("c", "b", "a"))
        assert compiled.order == ("c", "b", "a")
        assert isinstance(compiled.root, Decision) and compiled.root.name == "c"
        for assignment in all_assignments(("a", "b", "c")):
            assert decide(compiled.root, assignment) == (
                (assignment["a"] and assignment["b"]) or assignment["c"]
            )

    def test_explicit_order_must_cover_the_support(self):
        with pytest.raises(SemiringError):
            CircuitCompiler(order=("a",)).compile(prod_node(var("a"), var("b")))

    def test_module_cache_returns_identical_objects(self):
        clear_compile_cache()
        circuit = prod_node(var("a"), sum_node(var("b"), var("c")))
        first = compile_circuit(circuit)
        assert compile_circuit(circuit) is first
        assert compile_circuit(circuit, model="frequency") is not first

    def test_shared_compiler_shares_the_memo(self):
        """Related lineages (same subcircuits) must hit the compile cache."""
        compiler = CircuitCompiler()
        base = prod_node(var("a"), var("b"))
        compiler.compile(base)
        hits_before = compiler.cache_hits
        compiler.compile(sum_node(base, var("c")))
        assert compiler.cache_hits > hits_before

    def test_compile_metrics_accumulate(self):
        clear_compile_cache()
        before = compilation.snapshot()
        compile_circuit(sum_node(prod_node(var("a"), var("b")), var("d")))
        delta = compilation.delta(before)
        assert delta["compiles"] == 1
        assert delta["input_nodes"] > 0
        assert delta["output_nodes"] > 0


class TestDeletionHomomorphism:
    """Satellite: the PR 8 vars->0 deletion homomorphism commutes with
    compilation -- restricting the source circuit and compiling equals
    restricting the compiled diagram (as Boolean functions)."""

    @settings(max_examples=40, deadline=None)
    @given(
        circuits(),
        st.sets(st.sampled_from(NAMES), max_size=3),
        st.randoms(use_true_random=False),
    )
    def test_restrict_commutes_with_compilation(self, circuit, deleted, rng):
        deleted = frozenset(deleted)
        source_restricted = compile_circuit(restrict_vars(circuit, deleted))
        diagram_restricted = restrict_vars(compile_circuit(circuit).root, deleted)
        weights = {name: rng.random() for name in NAMES}
        assert wmc(diagram_restricted, weights) == pytest.approx(
            source_restricted.wmc(weights), abs=1e-12
        )
        for assignment in all_assignments(NAMES):
            alive = {k: v for k, v in assignment.items() if k not in deleted}
            assert decide(diagram_restricted, alive) == decide(
                source_restricted.root, alive
            )

    def test_restrict_handles_negation_and_decisions(self):
        from repro.circuits import decision_node, not_node

        diagram = decision_node("a", decision_node("b", ONE, ZERO), ZERO)
        # Deleting "a" forces the lo branch; deleting "b" prunes inside.
        assert restrict_vars(diagram, {"a"}) is ZERO
        restricted = restrict_vars(diagram, {"b"})
        assert decide(restricted, {"a": True, "b": True}) is False
        assert restrict_vars(not_node(var("a")), {"a"}) is ONE

    def test_specialize_after_restriction_matches_zero_valuation(self):
        """The deletion path's contract: restrict-then-specialize equals
        specializing with the deleted variables sent to zero."""
        circuit = sum_node(prod_node(var("a"), var("b")), prod_node(var("c"), var("d")))
        deleted = {"b"}
        restricted = restrict_vars(circuit, deleted)
        valuation = {"a": 2, "b": 5, "c": 3, "d": 1}
        zeroed = {name: (0 if name in deleted else value) for name, value in valuation.items()}
        survivors = {k: v for k, v in valuation.items() if k not in deleted}
        assert specialize(restricted, NATURALS, survivors) == specialize(
            circuit, NATURALS, zeroed
        )
