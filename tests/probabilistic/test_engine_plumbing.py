"""The probabilistic frontend rides the planner and the fast engines.

``ProbabilisticDatabase.query_events``/``datalog_events`` used to hard-code
unoptimized naive evaluation, bypassing both the PR 2 semi-naive datalog
engine and the PR 4 planner.  They now plumb ``optimize=``/``executor=``
(queries) and ``engine=`` (datalog) through, with planner-on / semi-naive
defaults.  These tests prove the answer *events* -- not just the
probabilities -- are identical across every mode.
"""

from __future__ import annotations

import pytest

from repro.probabilistic import ProbabilisticDatabase
from repro.relations import Tup
from repro.workloads import (
    figure4_probabilistic_database,
    section2_query,
    transitive_closure_program,
)


def _cyclic_pdb() -> ProbabilisticDatabase:
    pdb = ProbabilisticDatabase()
    pdb.add_relation(
        "R",
        ["x", "y"],
        [
            (("a", "b"), "e1", 0.5),
            (("b", "c"), "e2", 0.5),
            (("a", "c"), "e3", 0.2),
            (("c", "a"), "e4", 0.5),
        ],
    )
    return pdb


def _assert_identical_events(reference, candidate, context):
    assert reference.schema.attribute_set == candidate.schema.attribute_set, context
    assert set(reference.support) == set(candidate.support), context
    for tup in reference.support:
        assert reference.annotation(tup) == candidate.annotation(tup), (
            f"{context}: event mismatch on {tup}"
        )


class TestQueryPlumbing:
    def test_all_query_modes_produce_identical_events(self):
        pdb = figure4_probabilistic_database()
        query = section2_query()
        reference = pdb.query_events(query, optimize=False)
        for optimize in (False, True):
            for executor in ("naive", "pipelined"):
                _assert_identical_events(
                    reference,
                    pdb.query_events(query, optimize=optimize, executor=executor),
                    f"optimize={optimize}, executor={executor}",
                )

    def test_optimized_is_the_default(self):
        """The planner-on default gives the same events as the old hard-coded
        naive path (Proposition 3.4 over P(Omega))."""
        pdb = figure4_probabilistic_database()
        query = section2_query()
        _assert_identical_events(
            pdb.query_events(query, optimize=False),
            pdb.query_events(query),
            "default mode",
        )

    def test_probabilities_agree_across_modes(self):
        pdb = figure4_probabilistic_database()
        query = section2_query()
        reference = pdb.query_probabilities(query, optimize=False)
        fast = pdb.query_probabilities(query, optimize=True, executor="pipelined")
        assert set(reference) == set(fast)
        for tup, probability in reference.items():
            assert fast[tup] == pytest.approx(probability)


class TestPipelinedDefault:
    """The pipelined executor is now the default for probabilistic queries."""

    def test_signature_defaults_are_pipelined(self):
        import inspect

        for method in (
            ProbabilisticDatabase.query_events,
            ProbabilisticDatabase.query_probabilities,
            ProbabilisticDatabase.query_lineage,
        ):
            assert (
                inspect.signature(method).parameters["executor"].default
                == "pipelined"
            ), method.__name__

    def test_default_matches_explicit_naive(self):
        pdb = figure4_probabilistic_database()
        query = section2_query()
        _assert_identical_events(
            pdb.query_events(query, executor="naive"),
            pdb.query_events(query),
            "pipelined default",
        )
        naive = pdb.query_probabilities(query, executor="naive")
        default = pdb.query_probabilities(query)
        assert set(naive) == set(default)
        for tup, probability in naive.items():
            assert default[tup] == pytest.approx(probability)


class TestEventSpaceMemo:
    """``IndependentEventSpace.probability`` memoizes per distinct event.

    The space is immutable after ``_build`` -- marginals are fixed at
    construction and the 2^n world set never changes -- so the memo is never
    invalidated.  It is also lazy: nothing is built until first use.
    """

    def test_space_is_lazy_until_first_use(self):
        from repro.probabilistic import IndependentEventSpace

        space = IndependentEventSpace({"e1": 0.5, "e2": 0.25})
        assert not space.is_built
        space.probability(space.event("e1"))
        assert space.is_built

    def test_memo_grows_and_hits(self):
        from repro.probabilistic import IndependentEventSpace

        space = IndependentEventSpace({"e1": 0.5, "e2": 0.25})
        e1 = space.event("e1")
        first = space.probability(e1)
        assert len(space._probability_memo) == 1
        # The memoized value is returned (same float object, no recompute).
        assert space.probability(frozenset(e1)) is first
        assert len(space._probability_memo) == 1
        space.probability(space.event("e2"))
        assert len(space._probability_memo) == 2
        assert first == pytest.approx(0.5)


class TestDatalogPlumbing:
    def test_both_engines_produce_identical_events(self):
        pdb = _cyclic_pdb()
        program = transitive_closure_program()
        _assert_identical_events(
            pdb.datalog_events(program, engine="naive"),
            pdb.datalog_events(program, engine="seminaive"),
            "datalog engines",
        )

    def test_seminaive_is_the_default(self):
        pdb = _cyclic_pdb()
        program = transitive_closure_program()
        _assert_identical_events(
            pdb.datalog_events(program, engine="naive"),
            pdb.datalog_events(program),
            "default datalog engine",
        )

    def test_probabilities_agree_across_engines(self):
        pdb = _cyclic_pdb()
        program = transitive_closure_program()
        naive = pdb.datalog_probabilities(program, engine="naive")
        seminaive = pdb.datalog_probabilities(program, engine="seminaive")
        assert set(naive) == set(seminaive)
        for tup, probability in naive.items():
            assert seminaive[tup] == pytest.approx(probability)
        # Anchor to the known closed-form value from the paper's example.
        assert seminaive[Tup(x="a", y="c")] == pytest.approx(0.4)
