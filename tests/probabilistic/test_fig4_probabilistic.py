"""Figure 4: event tables and exact probabilistic query answering (E4)."""

import pytest

from repro.probabilistic import EventTable, IndependentEventSpace, ProbabilisticDatabase
from repro.relations import Tup
from repro.semirings.posbool import BoolExpr
from repro.workloads import figure4_probabilistic_database, section2_query, transitive_closure_program

# Figure 4(b): events of the answer tuples, with Pr(x)=0.6, Pr(y)=0.5, Pr(z)=0.1.
EXPECTED_PROBABILITIES = {
    ("a", "c"): 0.6,        # x
    ("a", "e"): 0.3,        # x ∩ y
    ("d", "c"): 0.3,        # x ∩ y
    ("d", "e"): 0.5,        # y
    ("f", "e"): 0.1,        # z
}


class TestIndependentEventSpace:
    def test_world_weights_multiply_marginals(self):
        space = IndependentEventSpace({"x": 0.6, "y": 0.5})
        assert len(space.space) == 4
        assert space.probability(space.event("x")) == pytest.approx(0.6)
        assert space.probability(space.event("x") & space.event("y")) == pytest.approx(0.3)

    def test_event_of_expression(self):
        space = IndependentEventSpace({"x": 0.5, "y": 0.5})
        both = space.event_of_expression(BoolExpr.var("x") & BoolExpr.var("y"))
        either = space.event_of_expression(BoolExpr.var("x") | BoolExpr.var("y"))
        assert space.probability(both) == pytest.approx(0.25)
        assert space.probability(either) == pytest.approx(0.75)

    def test_invalid_marginal_rejected(self):
        with pytest.raises(Exception):
            IndependentEventSpace({"x": 1.5})


class TestFigure4:
    def test_event_probabilities_match_paper(self):
        pdb = figure4_probabilistic_database()
        probabilities = pdb.query_probabilities(section2_query())
        assert len(probabilities) == len(EXPECTED_PROBABILITIES)
        for (a, c), expected in EXPECTED_PROBABILITIES.items():
            assert probabilities[Tup(a=a, c=c)] == pytest.approx(expected)

    def test_events_mirror_the_ctable_structure(self):
        """Figure 4(b) is 'the same table' as Figure 2(b) with events for conditions."""
        pdb = figure4_probabilistic_database()
        events = pdb.query_events(section2_query())
        x = pdb.space.event("x")
        y = pdb.space.event("y")
        assert events.annotation(Tup(a="a", c="c")) == x
        assert events.annotation(Tup(a="a", c="e")) == x & y

    def test_input_tuple_probabilities(self):
        pdb = figure4_probabilistic_database()
        assert pdb.tuple_probability("R", ("a", "b", "c")) == pytest.approx(0.6)
        assert pdb.marginal("z") == pytest.approx(0.1)


class TestProbabilisticDatalog:
    def test_probabilistic_transitive_closure(self):
        """Section 8: datalog over P(Omega) terminates and gives exact probabilities."""
        pdb = ProbabilisticDatabase()
        pdb.add_relation(
            "R",
            ["x", "y"],
            [
                (("a", "b"), "e1", 0.5),
                (("b", "c"), "e2", 0.5),
                (("a", "c"), "e3", 0.2),
                (("c", "a"), "e4", 0.5),   # creates a cycle a -> b -> c -> a
            ],
        )
        probabilities = pdb.datalog_probabilities(transitive_closure_program())
        # Pr[a ~> c] = Pr[e3 or (e1 and e2)] = 0.2 + 0.25 - 0.05 = 0.4
        assert probabilities[Tup(x="a", y="c")] == pytest.approx(0.4)
        # the cyclic tuple a ~> a exists iff (e1 e2 e4) or (e3 e4)
        expected_aa = pdb.space.probability(
            pdb.space.event_of_expression(
                (BoolExpr.var("e1") & BoolExpr.var("e2") & BoolExpr.var("e4"))
                | (BoolExpr.var("e3") & BoolExpr.var("e4"))
            )
        )
        assert probabilities[Tup(x="a", y="a")] == pytest.approx(expected_aa)

    def test_event_table_helper(self):
        table = EventTable.tuple_independent(
            ["a"], [(("t1",), "x", 0.25), (("t2",), "y", 0.75)]
        )
        assert table.probability(("t1",)) == pytest.approx(0.25)
        assert len(table.probabilities()) == 2

    def test_conflicting_marginals_rejected(self):
        pdb = ProbabilisticDatabase()
        pdb.add_relation("R", ["a"], [(("t",), "x", 0.5)])
        pdb.add_relation("S", ["a"], [(("u",), "x", 0.7)])
        with pytest.raises(Exception):
            _ = pdb.database
