"""Differential harness: compiled inference vs the enumeration oracle.

``method="compile"`` (knowledge-compile the lineage, weighted-model-count
the diagram) must agree *exactly* with ``method="enumerate"`` (intensional
evaluation over the explicit ``2^n`` world space) -- on probabilities, on
answer events, and on the top-k most-probable worlds -- over random
positive-algebra queries and random datalog programs, on both storage
backends.  Event pools are small enough for the oracle and deliberately
reused across tuples, so correlated answers (shared events) are exercised,
not just the independent case.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.probabilistic import ProbabilisticDatabase
from tests.strategies import BASE_SCHEMAS, DOMAIN, programs, ra_queries

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

#: Small pool of event names -- reuse across tuples creates correlation.
EVENT_POOL = ("e1", "e2", "e3", "e4", "e5", "e6")
MARGINAL_POOL = (0.1, 0.25, 0.5, 0.75, 0.9)

STORAGES = ("row", "columnar")


@st.composite
def probabilistic_databases(draw):
    """A ProbabilisticDatabase over ``BASE_SCHEMAS`` with a small event pool."""
    marginals = {
        name: draw(st.sampled_from(MARGINAL_POOL)) for name in EVENT_POOL
    }
    pdb = ProbabilisticDatabase()
    for relation_name in sorted(BASE_SCHEMAS):
        attributes = BASE_SCHEMAS[relation_name]
        count = draw(st.integers(min_value=0, max_value=5))
        rows = draw(
            st.lists(
                st.tuples(*([st.sampled_from(DOMAIN)] * len(attributes))),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
        declared = []
        for values in rows:
            event = draw(st.sampled_from(EVENT_POOL))
            declared.append((values, event, marginals[event]))
        pdb.add_relation(relation_name, attributes, declared)
    return pdb


@st.composite
def datalog_probabilistic_databases(draw, program):
    """A ProbabilisticDatabase providing every EDB relation of ``program``."""
    marginals = {
        name: draw(st.sampled_from(MARGINAL_POOL)) for name in EVENT_POOL
    }
    pdb = ProbabilisticDatabase()
    for predicate in sorted(program.edb_predicates):
        arity = program.arity(predicate)
        count = draw(st.integers(min_value=0, max_value=4))
        rows = draw(
            st.lists(
                st.tuples(*([st.sampled_from(DOMAIN)] * arity)),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
        declared = []
        for values in rows:
            event = draw(st.sampled_from(EVENT_POOL))
            declared.append((values, event, marginals[event]))
        pdb.add_relation(predicate, [f"c{i + 1}" for i in range(arity)], declared)
    return pdb


def _assert_probabilities_match(compiled, enumerated, context):
    assert set(compiled) == set(enumerated), context
    for tup, probability in enumerated.items():
        assert compiled[tup] == pytest.approx(probability, abs=1e-9), (
            f"{context}: probability mismatch on {tup}"
        )


class TestQueries:
    @SETTINGS
    @given(probabilistic_databases(), ra_queries(), st.sampled_from(STORAGES))
    def test_probabilities_match_oracle(self, pdb, query_and_schema, storage):
        query, _ = query_and_schema
        compiled = pdb.query_probabilities(query, storage=storage)
        enumerated = pdb.query_probabilities(query, method="enumerate", storage=storage)
        _assert_probabilities_match(compiled, enumerated, f"storage={storage}")

    @SETTINGS
    @given(probabilistic_databases(), ra_queries())
    def test_events_match_oracle_exactly(self, pdb, query_and_schema):
        query, _ = query_and_schema
        compiled = pdb.query_events(query, method="compile")
        enumerated = pdb.query_events(query, method="enumerate")
        assert set(compiled.support) == set(enumerated.support)
        for tup in enumerated.support:
            assert compiled.annotation(tup) == enumerated.annotation(tup), (
                f"event mismatch on {tup}"
            )

    @SETTINGS
    @given(probabilistic_databases(), ra_queries(), st.integers(min_value=1, max_value=4))
    def test_top_k_matches_oracle(self, pdb, query_and_schema, k):
        """The top-k world probabilities equal the oracle's k best, and every
        returned world really derives the tuple (checked against the event)."""
        query, _ = query_and_schema
        top = pdb.query_top_k(query, k)
        if not top:
            return
        events = pdb.query_events(query, method="enumerate")
        space = pdb.space
        for tup, models in top.items():
            event = events.annotation(tup)
            # Oracle: probability of every world *restricted to the lineage
            # variables* -- group the 2^n worlds by their projection.
            support = sorted({name for _, a in models for name in a})
            grouped = {}
            for world in event:
                key = tuple(name in world for name in support)
                grouped[key] = grouped.get(key, 0.0) + space.space.weight(world)
            # Regroup: many worlds project to one lineage assignment.
            oracle = sorted(grouped.values(), reverse=True)[:k]
            got = [p for p, _ in models]
            assert len(got) == min(k, len(grouped))
            for got_p, oracle_p in zip(got, oracle):
                assert got_p == pytest.approx(oracle_p, abs=1e-9)
            # Probabilities of the k worlds sum to at most the tuple marginal.
            assert sum(got) <= pdb.space.probability(event) + 1e-9

    @SETTINGS
    @given(probabilistic_databases(), ra_queries())
    def test_map_is_the_top_1(self, pdb, query_and_schema):
        query, _ = query_and_schema
        maps = pdb.query_map(query)
        top = pdb.query_top_k(query, 1)
        assert set(maps) == set(top)
        for tup, best in maps.items():
            assert best is not None
            probability, assignment = best
            top_probability, _ = top[tup][0]
            assert probability == pytest.approx(top_probability, abs=1e-12)
            assert math.isfinite(probability) and probability >= 0.0


class TestDatalog:
    @SETTINGS
    @given(st.data(), st.sampled_from(STORAGES))
    def test_datalog_probabilities_match_oracle(self, data, storage):
        program = data.draw(programs())
        pdb = data.draw(datalog_probabilistic_databases(program))
        compiled = pdb.datalog_probabilities(program)
        enumerated = pdb.datalog_probabilities(program, method="enumerate")
        _assert_probabilities_match(compiled, enumerated, f"storage={storage}")

    @SETTINGS
    @given(st.data())
    def test_datalog_events_match_oracle_exactly(self, data):
        program = data.draw(programs())
        pdb = data.draw(datalog_probabilistic_databases(program))
        compiled = pdb.datalog_events(program, method="compile")
        enumerated = pdb.datalog_events(program, method="enumerate")
        assert set(compiled.support) == set(enumerated.support)
        for tup in enumerated.support:
            assert compiled.annotation(tup) == enumerated.annotation(tup)

    @SETTINGS
    @given(st.data())
    def test_datalog_engines_agree_on_compiled_path(self, data):
        program = data.draw(programs())
        pdb = data.draw(datalog_probabilistic_databases(program))
        seminaive = pdb.datalog_probabilities(program, engine="seminaive")
        naive = pdb.datalog_probabilities(program, engine="naive")
        _assert_probabilities_match(seminaive, naive, "engines")


class TestScale:
    def test_compiled_path_never_builds_the_world_space(self):
        """Forty uncertain tuples (2^40 worlds) complete via compilation."""
        pdb = ProbabilisticDatabase()
        pdb.add_relation(
            "R",
            ["x", "y"],
            [((f"n{i}", f"n{i + 1}"), f"w{i}", 0.9) for i in range(40)],
        )
        program = "Q(x,y) :- R(x,y).\nQ(x,z) :- Q(x,y), R(y,z)."
        probabilities = pdb.datalog_probabilities(program)
        assert len(probabilities) == 40 * 41 // 2
        # The chain endpoint needs all 40 edges: probability 0.9^40.
        from repro.relations import Tup

        assert probabilities[Tup(x="n0", y="n40")] == pytest.approx(0.9**40)
        assert pdb._space is None  # the 2^40 world space was never touched
