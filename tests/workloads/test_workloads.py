"""Workload generators and the exact paper instances."""

import pytest

from repro.semirings import (
    BooleanSemiring,
    CompletedNaturalsSemiring,
    NaturalsSemiring,
    PosBoolSemiring,
    ProvenancePolynomialSemiring,
    TropicalSemiring,
    WhyProvenanceSemiring,
)
from repro.workloads import (
    SECTION2_TUPLES,
    chain_graph_database,
    dag_database,
    figure3_bag_database,
    figure7_database,
    random_graph_database,
    random_relation,
    star_join_database,
    section2_database,
    transitive_closure_program,
    triangle_query,
)

ANNOTATION_SEMIRINGS = [
    BooleanSemiring(),
    NaturalsSemiring(),
    CompletedNaturalsSemiring(),
    TropicalSemiring(),
    PosBoolSemiring(),
    WhyProvenanceSemiring(),
    ProvenancePolynomialSemiring(),
]


@pytest.mark.parametrize("semiring", ANNOTATION_SEMIRINGS, ids=lambda s: s.name)
def test_random_relation_produces_valid_annotations(semiring):
    relation = random_relation(semiring, ["a", "b"], num_tuples=10, domain_size=6, seed=3)
    relation.check_consistency()
    assert 0 < len(relation) <= 10


def test_random_relation_is_deterministic():
    a = random_relation(NaturalsSemiring(), ["a"], num_tuples=8, domain_size=5, seed=11)
    b = random_relation(NaturalsSemiring(), ["a"], num_tuples=8, domain_size=5, seed=11)
    assert a.equal_to(b)


def test_star_join_database_has_expected_relations():
    db = star_join_database(NaturalsSemiring(), fact_tuples=20, dimension_tuples=5, seed=1)
    assert set(db.names()) == {"D1", "D2", "F"}
    assert len(db["F"]) == 20


def test_graph_generators():
    chain = chain_graph_database(BooleanSemiring(), length=10)
    assert len(chain["R"]) == 10
    dag = dag_database(BooleanSemiring(), layers=3, width=2)
    assert len(dag["R"]) == 8
    graph = random_graph_database(BooleanSemiring(), nodes=10, edge_probability=0.3, seed=2)
    assert len(graph["R"]) > 0


def test_triangle_query_parses():
    program = triangle_query()
    assert program.arity("T") == 3 and program.arity("R") == 2


def test_section2_instances():
    assert len(SECTION2_TUPLES) == 3
    db = section2_database(BooleanSemiring())
    assert len(db["R"]) == 3
    bag = figure3_bag_database()
    assert bag["R"].annotation(("d", "b", "e")) == 5


def test_figure7_database_across_semirings():
    natinf = figure7_database()
    assert natinf.semiring.name == "N∞"
    boolean = figure7_database(BooleanSemiring())
    assert all(v is True for v in boolean["R"].annotations())
    tropical = figure7_database(TropicalSemiring())
    assert len(tropical["R"]) == 5


def test_transitive_closure_program_variants():
    assert transitive_closure_program().is_recursive()
    linear = transitive_closure_program(linear=True)
    assert linear.is_recursive()
    assert any(len(rule.body) == 2 for rule in linear.rules)
