"""Shared fixtures: semiring inventories and the paper's example instances."""

from __future__ import annotations

import random

import pytest

from repro import (
    BooleanSemiring,
    CompletedNaturalsSemiring,
    FuzzySemiring,
    IntegerPolynomialRing,
    IntegerRing,
    NaturalsSemiring,
    PolynomialSemiring,
    PosBoolSemiring,
    ProvenancePolynomialSemiring,
    TropicalSemiring,
    ViterbiSemiring,
    WhyProvenanceSemiring,
    WitnessWhySemiring,
    ZPolynomial,
)
from repro.semirings.polynomial import Polynomial
from repro.semirings.posbool import BoolExpr


def _sample_elements(semiring):
    """A small pool of representative non-trivial elements per semiring."""
    name = semiring.name
    if name == "B":
        return [True, False]
    if name == "N":
        return [0, 1, 2, 3, 7]
    if name == "N∞":
        from repro.semirings.numeric import INFINITY, NatInf

        return [NatInf(0), NatInf(1), NatInf(3), INFINITY]
    if name == "Tropical":
        return [0.0, 1.0, 2.5, 7.0, float("inf")]
    if name in ("Fuzzy", "Viterbi"):
        return [0.0, 0.25, 0.5, 1.0]
    if name.startswith("PosBool"):
        return [
            BoolExpr.false(),
            BoolExpr.true(),
            BoolExpr.var("a"),
            BoolExpr.var("b"),
            BoolExpr.var("a") & BoolExpr.var("b"),
            BoolExpr.var("a") | (BoolExpr.var("b") & BoolExpr.var("c")),
        ]
    if name == "Why(X)":
        return [frozenset(), frozenset({"p"}), frozenset({"p", "r"}), frozenset({"s"})]
    if name == "Why-witness(X)":
        return [
            frozenset(),
            frozenset({frozenset({"p"})}),
            frozenset({frozenset({"p"}), frozenset({"r", "s"})}),
        ]
    if name in ("N[X]", "N∞[X]"):
        return [
            Polynomial.zero(),
            Polynomial.one(),
            Polynomial.var("p"),
            Polynomial.parse("2*p^2 + r*s"),
            Polynomial.parse("p + r"),
        ]
    if name == "Z":
        return [-3, -1, 0, 1, 2, 7]
    if name == "Z[X]":
        p, r = ZPolynomial.var("p"), ZPolynomial.var("r")
        return [
            ZPolynomial.zero(),
            ZPolynomial.one(),
            p,
            -p,
            p * p - r,
            p - r + 2,
        ]
    return [semiring.zero(), semiring.one()]


ALL_SEMIRINGS = [
    BooleanSemiring(),
    NaturalsSemiring(),
    CompletedNaturalsSemiring(),
    TropicalSemiring(),
    FuzzySemiring(),
    ViterbiSemiring(),
    PosBoolSemiring(),
    WhyProvenanceSemiring(),
    WitnessWhySemiring(),
    ProvenancePolynomialSemiring(),
    PolynomialSemiring(allow_infinite_coefficients=True),
    IntegerRing(),
    IntegerPolynomialRing(),
]

LATTICE_SEMIRINGS = [s for s in ALL_SEMIRINGS if s.is_distributive_lattice]

OMEGA_CONTINUOUS_SEMIRINGS = [s for s in ALL_SEMIRINGS if s.is_omega_continuous]


@pytest.fixture(params=ALL_SEMIRINGS, ids=lambda s: s.name)
def any_semiring(request):
    """Parametrized fixture covering every shipped semiring."""
    return request.param


@pytest.fixture(params=LATTICE_SEMIRINGS, ids=lambda s: s.name)
def lattice_semiring(request):
    """Parametrized fixture covering the distributive-lattice semirings."""
    return request.param


@pytest.fixture
def semiring_samples():
    """Map semiring name -> sample element pool (for law checking)."""
    return {semiring.name: _sample_elements(semiring) for semiring in ALL_SEMIRINGS}


def sample_elements(semiring):
    """Public helper used by parametrized tests that bypass the fixture."""
    return _sample_elements(semiring)


@pytest.fixture
def rng():
    """A deterministic random generator for data-dependent tests."""
    return random.Random(20070611)
