"""Figures 1 and 2: maybe-tables, possible worlds, and the Imielinski-Lipski
computation as the PosBool(B) positive algebra (E1, E2)."""

import pytest

from repro.incomplete import (
    CTable,
    MaybeTable,
    answer_world_set,
    certain_answers,
    ctable_database,
    possible_answers,
)
from repro.relations import Tup
from repro.semirings.posbool import BoolExpr
from repro.workloads import figure1_maybe_table, figure2_ctable_input, section2_query


def _tup(a, c):
    return Tup(a=a, c=c)


# The eight answer worlds of Figure 1(c).
FIGURE_1C_WORLDS = frozenset(
    frozenset(tuples)
    for tuples in [
        [],
        [_tup("a", "c")],
        [_tup("d", "e")],
        [_tup("f", "e")],
        [_tup("a", "c"), _tup("a", "e"), _tup("d", "c"), _tup("d", "e")],
        [_tup("d", "e"), _tup("f", "e")],
        [_tup("a", "c"), _tup("f", "e")],
        [_tup("a", "c"), _tup("a", "e"), _tup("d", "c"), _tup("d", "e"), _tup("f", "e")],
    ]
)

# The simplified conditions of Figure 2(b).
FIGURE_2B_CONDITIONS = {
    ("a", "c"): BoolExpr.var("b1"),
    ("a", "e"): BoolExpr.var("b1") & BoolExpr.var("b2"),
    ("d", "c"): BoolExpr.var("b1") & BoolExpr.var("b2"),
    ("d", "e"): BoolExpr.var("b2"),
    ("f", "e"): BoolExpr.var("b3"),
}


class TestFigure1:
    def test_maybe_table_has_eight_input_worlds(self):
        table = figure1_maybe_table()
        worlds = list(table.possible_worlds())
        assert len(worlds) == 8  # three independent optional tuples

    def test_answer_world_set_matches_figure_1c(self):
        worlds = answer_world_set(section2_query(), figure2_ctable_input(), "R")
        assert worlds == FIGURE_1C_WORLDS

    def test_result_not_representable_as_maybe_table(self):
        """The paper's motivating observation: (a,e) and (d,c) force (a,c) and (d,e)."""
        worlds = sorted(FIGURE_1C_WORLDS, key=len)
        assert not MaybeTable.can_represent(worlds)

    def test_some_world_sets_are_representable(self):
        table = MaybeTable(["a"])
        table.add_certain(("x",))
        table.add_maybe(("y",))
        assert MaybeTable.can_represent(list(table.possible_worlds()))

    def test_maybe_table_posbool_encoding(self):
        table = figure1_maybe_table()
        relation = table.to_posbool_relation()
        assert relation.annotation(("a", "b", "c")) == BoolExpr.var("b1")
        assert relation.annotation(("f", "g", "e")) == BoolExpr.var("b3")
        assert table.variables == ("b1", "b2", "b3")


class TestFigure2:
    def test_imielinski_lipski_computation_via_posbool(self):
        """Running the generic RA+ over PosBool(B) produces the Figure 2(b) c-table."""
        result = section2_query().evaluate(ctable_database({"R": figure2_ctable_input()}))
        assert len(result) == len(FIGURE_2B_CONDITIONS)
        for (a, c), condition in FIGURE_2B_CONDITIONS.items():
            assert result.annotation(_tup(a, c)) == condition

    def test_output_ctable_represents_exactly_figure_1c(self):
        """The c-table result and the brute-force possible-worlds evaluation agree."""
        result = section2_query().evaluate(ctable_database({"R": figure2_ctable_input()}))
        output_table = CTable.from_relation(result)
        assert output_table.world_set(variables=["b1", "b2", "b3"]) == FIGURE_1C_WORLDS

    def test_certain_and_possible_answers(self):
        query, table = section2_query(), figure2_ctable_input()
        assert certain_answers(query, table, "R") == frozenset()
        assert possible_answers(query, table, "R") == frozenset(
            {_tup("a", "c"), _tup("a", "e"), _tup("d", "c"), _tup("d", "e"), _tup("f", "e")}
        )


class TestCTableBasics:
    def test_conditions_accumulate_by_disjunction(self):
        table = CTable(["a"])
        table.add(("x",), "c1")
        table.add(("x",), "c2")
        assert table.condition(("x",)) == BoolExpr.var("c1") | BoolExpr.var("c2")

    def test_world_selection(self):
        table = figure2_ctable_input()
        world = table.world({"b1": True, "b2": False, "b3": True})
        assert set(world.support) == {
            Tup(a="a", b="b", c="c"),
            Tup(a="f", b="g", c="e"),
        }

    def test_certain_vs_possible_tuples(self):
        table = CTable(["a"])
        table.add(("always",), True)
        table.add(("sometimes",), "c")
        assert table.certain_tuples() == frozenset({Tup(a="always")})
        assert table.possible_tuples() == frozenset({Tup(a="always"), Tup(a="sometimes")})

    def test_from_relation_requires_posbool(self):
        from repro.relations import KRelation
        from repro.semirings import NaturalsSemiring

        with pytest.raises(Exception):
            CTable.from_relation(KRelation(NaturalsSemiring(), ["a"]))
