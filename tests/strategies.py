"""Reusable Hypothesis strategies for randomized datalog testing.

The differential suite (``tests/datalog/test_seminaive_vs_naive.py``) needs
random but *well-formed* inputs: safe datalog programs whose body predicates
are either defined by some rule or backed by an EDB relation, databases whose
relations match the program's arities, and annotations drawn from whichever
semiring is under test.  These strategies produce exactly that, are fully
shrinkable (every choice is a plain Hypothesis draw), and deterministic under
``derandomize=True`` settings.

Conventions
-----------
* EDB predicates come from ``EDB_PREDICATES``, IDB predicates from
  ``IDB_PREDICATES``; arities are drawn once per program and shared with the
  database strategy through :meth:`Program.arity`.
* Abstract-tagging semirings (``PosBool``, ``N[X]``, circuits) get a fresh
  variable per EDB tuple (``t1, t2, ...``), the same convention the
  provenance machinery uses.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.algebra import predicates
from repro.algebra.ast import Q
from repro.datalog import Program, Rule
from repro.logic import Atom, Constant, Variable
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.semirings import Polynomial, ZPolynomial, get_semiring
from repro.semirings.base import Semiring
from repro.semirings.numeric import INFINITY, NatInf
from repro.semirings.posbool import BoolExpr

__all__ = [
    "EDB_PREDICATES",
    "IDB_PREDICATES",
    "DOMAIN",
    "REGISTRY_SEMIRING_NAMES",
    "VIEW_SEMIRING_NAMES",
    "PLANNER_SEMIRING_NAMES",
    "BASE_SCHEMAS",
    "annotation_for",
    "random_annotation",
    "semiring_elements",
    "programs",
    "edb_databases",
    "programs_with_databases",
    "ra_queries",
    "view_databases",
]

EDB_PREDICATES = ("R", "S")
IDB_PREDICATES = ("Q", "P")
DOMAIN = ("a", "b", "c", "d")
VARIABLE_NAMES = ("x", "y", "z", "w")

#: Registry names of the semirings the differential suite runs over.
REGISTRY_SEMIRING_NAMES = ("bag", "bool", "tropical", "posbool", "nx", "circuit")

#: Registry names of the semirings the incremental-view differential harness
#: runs over (insertions everywhere; deletions where ``has_negation``).
VIEW_SEMIRING_NAMES = ("bag", "bool", "tropical", "posbool", "z", "zx")

#: Registry names the plan-equivalence harness checks optimized evaluation
#: over (the ISSUE's list: N, B, Tropical, PosBool, Z, N[X], circuits).
PLANNER_SEMIRING_NAMES = ("bag", "bool", "tropical", "posbool", "z", "nx", "circuit")

#: Base relations (and their named-perspective schemas) the random RA
#: expression strategy draws from.
BASE_SCHEMAS = {"R": ("a", "b"), "S": ("b", "c")}


def annotation_for(semiring: Semiring, index: int, draw) -> object:
    """A random non-zero annotation for ``semiring``.

    ``index`` is a unique per-tuple counter; abstract-tagging semirings use
    it to mint a fresh variable per tuple, everything else draws from a small
    pool of representative elements.
    """
    name = semiring.name
    if name == "B":
        return True
    if name == "N":
        return draw(st.integers(min_value=1, max_value=4))
    if name == "N∞":
        return draw(
            st.sampled_from([NatInf(1), NatInf(2), NatInf(3), INFINITY])
        )
    if name == "Tropical":
        return draw(st.sampled_from([0.0, 1.0, 2.0, 3.5, 7.0]))
    if name in ("Fuzzy", "Viterbi"):
        return draw(st.sampled_from([0.125, 0.25, 0.5, 1.0]))
    if name.startswith("PosBool"):
        return BoolExpr.var(f"t{index}")
    if name.startswith("Why"):
        return frozenset({f"t{index}"})
    if name in ("N[X]", "N∞[X]"):
        return Polynomial.var(f"t{index}")
    if name == "Circ[X]":
        return semiring.var(f"t{index}")
    if name == "Z":
        return draw(st.sampled_from([-3, -1, 1, 2, 4]))
    if name == "Z[X]":
        variable = ZPolynomial.var(f"t{index}")
        return draw(st.sampled_from([variable, -variable, variable + 2, variable - 1]))
    if "[[" in name:  # truncated power series N∞[[X]]
        return semiring.var(f"t{index}")
    return semiring.one()


#: Alias used by callers that mirror ``repro.workloads.random_annotation``.
random_annotation = annotation_for


@st.composite
def semiring_elements(draw, semiring: Semiring):
    """A random carrier element: zero, one, or a small ``+``/``.`` combination.

    Builds on :func:`annotation_for` (a fresh "interesting" element per draw)
    and closes under the semiring operations -- and negation, for rings -- so
    the axiom property suite exercises composite values, not just generators.
    """

    def base() -> object:
        choice = draw(st.integers(min_value=0, max_value=5))
        if choice == 0:
            return semiring.zero()
        if choice == 1:
            return semiring.one()
        return semiring.coerce(
            annotation_for(semiring, draw(st.integers(min_value=1, max_value=4)), draw)
        )

    value = base()
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        other = base()
        if draw(st.booleans()):
            value = semiring.add(value, other)
        else:
            value = semiring.mul(value, other)
    if semiring.has_negation and draw(st.booleans()):
        value = semiring.negate(value)
    return value


@st.composite
def _terms(draw, arity: int, variable_pool: tuple[str, ...]):
    """``arity`` terms, biased toward variables (constants keep plans honest)."""
    terms = []
    for _ in range(arity):
        if draw(st.integers(min_value=0, max_value=9)) < 8:
            terms.append(Variable(draw(st.sampled_from(variable_pool))))
        else:
            terms.append(Constant(draw(st.sampled_from(DOMAIN))))
    return tuple(terms)


@st.composite
def _rule(draw, head_predicate: str, arities: dict, body_pool: tuple[str, ...]):
    body_size = draw(st.integers(min_value=1, max_value=3))
    body = []
    for _ in range(body_size):
        predicate = draw(st.sampled_from(body_pool))
        body.append(Atom(predicate, draw(_terms(arities[predicate], VARIABLE_NAMES))))
    body_variables = sorted(
        {v.name for atom in body for v in atom.variables}
    )
    head_terms = []
    for _ in range(arities[head_predicate]):
        if body_variables and draw(st.booleans()):
            head_terms.append(Variable(draw(st.sampled_from(body_variables))))
        elif body_variables:
            # Bias toward variables but allow head constants occasionally.
            if draw(st.integers(min_value=0, max_value=4)) == 0:
                head_terms.append(Constant(draw(st.sampled_from(DOMAIN))))
            else:
                head_terms.append(Variable(draw(st.sampled_from(body_variables))))
        else:
            head_terms.append(Constant(draw(st.sampled_from(DOMAIN))))
    return Rule(Atom(head_predicate, head_terms), body)


@st.composite
def programs(draw) -> Program:
    """A random safe datalog program (possibly recursive, possibly cyclic).

    Every IDB predicate in use is defined by at least one rule and every
    body-only predicate comes from ``EDB_PREDICATES``, so the program always
    validates and grounds.
    """
    idb_count = draw(st.integers(min_value=1, max_value=2))
    idb = IDB_PREDICATES[:idb_count]
    arities = {
        predicate: draw(st.integers(min_value=1, max_value=2))
        for predicate in EDB_PREDICATES + idb
    }
    body_pool = EDB_PREDICATES + idb
    rules = [draw(_rule(predicate, arities, body_pool)) for predicate in idb]
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        head = draw(st.sampled_from(idb))
        rules.append(draw(_rule(head, arities, body_pool)))
    return Program(rules, output=idb[0])


@st.composite
def edb_databases(draw, program: Program, semiring: Semiring) -> Database:
    """A random database providing every EDB relation ``program`` reads.

    Relation sizes are small (0-6 tuples over a 4-value domain) so that even
    quadratic recursive rules stay comfortably testable; annotations come
    from :func:`annotation_for`.
    """
    database = Database(semiring)
    index = 0
    for predicate in sorted(program.edb_predicates):
        arity = program.arity(predicate)
        relation = KRelation(semiring, [f"c{i + 1}" for i in range(arity)])
        tuple_count = draw(st.integers(min_value=0, max_value=6))
        rows = draw(
            st.lists(
                st.tuples(*([st.sampled_from(DOMAIN)] * arity)),
                min_size=tuple_count,
                max_size=tuple_count,
                unique=True,
            )
        )
        for values in rows:
            index += 1
            relation.set(values, annotation_for(semiring, index, draw))
        database.register(predicate, relation)
    return database


@st.composite
def programs_with_databases(draw, semiring_name: str):
    """A (program, database) pair over the named registry semiring."""
    semiring = get_semiring(semiring_name)
    program = draw(programs())
    database = draw(edb_databases(program, semiring))
    return program, database


# ---------------------------------------------------------------------------
# Random positive-algebra expressions (for the incremental-view harness)
# ---------------------------------------------------------------------------

_RENAME_POOL = ("u", "v", "w")


def _opaque_predicate(attribute: str, value: str):
    """A deterministic *plain-callable* predicate (no structure exposed).

    Exercises the planner's opaque fallback: these predicates must never be
    pushed past projections/renames or into join sides, only through unions.
    """

    def predicate(tup):
        return tup[attribute] == value

    predicate.__name__ = f"opaque_eq_{attribute}_{value}"
    return predicate


@st.composite
def ra_queries(draw, max_depth: int = 3):
    """A random positive-algebra query over ``BASE_SCHEMAS``.

    Returns ``(query, schema)`` where ``schema`` is the attribute tuple of
    the query's result.  Schema bookkeeping during generation keeps every
    draw well-formed: projections pick non-empty attribute subsets, unions
    are taken over a common projection of both sides, renames avoid
    collisions, and joins are unrestricted (shared attributes or cross
    product, both legal in Definition 3.2).
    """

    def leaf():
        name = draw(st.sampled_from(sorted(BASE_SCHEMAS)))
        return Q.relation(name), BASE_SCHEMAS[name]

    def build(depth: int):
        if depth == 0 or draw(st.integers(min_value=0, max_value=3)) == 0:
            return leaf()
        kind = draw(
            st.sampled_from(("project", "select", "rename", "join", "union"))
        )
        if kind == "project":
            query, schema = build(depth - 1)
            keep = sorted(
                draw(
                    st.sets(
                        st.sampled_from(sorted(schema)),
                        min_size=1,
                        max_size=len(schema),
                    )
                )
            )
            return query.project(*keep), tuple(keep)
        if kind == "select":
            query, schema = build(depth - 1)
            attribute = draw(st.sampled_from(sorted(schema)))
            value = draw(st.sampled_from(DOMAIN))
            flavor = draw(st.integers(min_value=0, max_value=5))
            if flavor == 0 and len(schema) >= 2:
                other = draw(st.sampled_from(sorted(set(schema) - {attribute})))
                return query.where_attrs_equal(attribute, other), schema
            if flavor == 1:
                return query.select(predicates.attr_neq_const(attribute, value)), schema
            if flavor == 2:
                op = draw(st.sampled_from(("<", "<=", ">", ">=")))
                return query.select(predicates.comparison(attribute, op, value)), schema
            if flavor == 3:
                second = draw(st.sampled_from(sorted(schema)))
                other_value = draw(st.sampled_from(DOMAIN))
                combined = predicates.conjunction(
                    predicates.attr_eq_const(attribute, value),
                    predicates.attr_neq_const(second, other_value),
                )
                return query.select(combined, description=str(combined)), schema
            if flavor == 4:
                return query.select(_opaque_predicate(attribute, value)), schema
            return query.where_eq(attribute, value), schema
        if kind == "rename":
            query, schema = build(depth - 1)
            fresh = [n for n in _RENAME_POOL if n not in schema]
            if not fresh:
                return query, schema
            old = draw(st.sampled_from(sorted(schema)))
            new = draw(st.sampled_from(fresh))
            renamed = tuple(new if a == old else a for a in schema)
            return query.rename({old: new}), renamed
        left, left_schema = build(depth - 1)
        right, right_schema = build(depth - 1)
        if kind == "join":
            joined = left_schema + tuple(
                a for a in right_schema if a not in left_schema
            )
            return left.join(right), joined
        common = sorted(set(left_schema) & set(right_schema))
        if not common:
            # No union-compatible projection exists; degrade to a join.
            joined = left_schema + tuple(
                a for a in right_schema if a not in left_schema
            )
            return left.join(right), joined
        return (
            left.project(*common).union(right.project(*common)),
            tuple(common),
        )

    return build(max_depth)


@st.composite
def view_databases(draw, semiring: Semiring):
    """A random database providing every base relation of ``BASE_SCHEMAS``."""
    database = Database(semiring)
    index = 0
    for name in sorted(BASE_SCHEMAS):
        attributes = BASE_SCHEMAS[name]
        relation = KRelation(semiring, attributes)
        count = draw(st.integers(min_value=0, max_value=5))
        rows = draw(
            st.lists(
                st.tuples(*([st.sampled_from(DOMAIN)] * len(attributes))),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
        for values in rows:
            index += 1
            relation.set(values, annotation_for(semiring, index, draw))
        database.register(name, relation)
    return database
