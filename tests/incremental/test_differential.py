"""Differential update-stream harness: incremental maintenance vs recompute.

The delta compiler and :class:`MaterializedView` must agree with full
recomputation *annotation-for-annotation* after every batch of a random
update stream, for every supported semiring: insertions everywhere,
deletions everywhere too -- through negated deltas over rings (``Z``,
``Z[X]``) and through the targeted delete/rederive pass otherwise.  Queries
are
random positive-algebra expressions from ``tests/strategies.py``; a shadow
copy of the database is updated independently so the comparison never trusts
the view's own bookkeeping.

The update-stream tests run on **both storage backends**: ``storage="row"``
maintains dict-of-``Tup`` materializations, ``storage="columnar"`` keeps
every node on the columnar store (routing repeated delta joins through the
vectorized kernels when numpy is available) -- the maintained annotations
must be identical either way.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from strategies import (
    DOMAIN,
    BASE_SCHEMAS,
    VIEW_SEMIRING_NAMES,
    annotation_for,
    ra_queries,
    view_databases,
)

from repro.incremental import (
    MaterializedView,
    UpdateBatch,
    apply_batch_to_database,
    apply_delta,
    batch_deltas,
    view_delta,
)
from repro.semirings import get_semiring

DIFFERENTIAL_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

def _draw_batch(data, semiring, shadow, index: int, *, allow_deletions: bool):
    """One random update batch against the live supports of ``shadow``."""
    insertions = {}
    deletions = {}
    for name in sorted(BASE_SCHEMAS):
        attributes = BASE_SCHEMAS[name]
        count = data.draw(st.integers(min_value=0, max_value=3), label=f"ins {name}")
        entries = []
        for _ in range(count):
            values = tuple(
                data.draw(st.sampled_from(DOMAIN)) for _ in attributes
            )
            index += 1
            entries.append((values, annotation_for(semiring, index, data.draw)))
        if entries:
            insertions[name] = entries
        if allow_deletions:
            support = sorted(
                tup.values_for(attributes) for tup in shadow.relation(name)
            )
            if support and data.draw(st.booleans(), label=f"del {name}?"):
                deletions[name] = [data.draw(st.sampled_from(support))]
    return UpdateBatch(insertions=insertions, deletions=deletions), index


def _run_stream(semiring_name: str, data, *, allow_deletions: bool, storage="row"):
    semiring = get_semiring(semiring_name)
    query, _ = data.draw(ra_queries(), label="query")
    database = data.draw(view_databases(semiring), label="database")
    shadow = database.copy()
    view = MaterializedView(query, database, storage=storage)
    assert view.relation.storage == storage
    assert view.relation.equal_to(query.evaluate(shadow))
    index = 1000
    batches = data.draw(st.integers(min_value=1, max_value=4), label="batches")
    for _ in range(batches):
        batch, index = _draw_batch(
            data, semiring, shadow, index, allow_deletions=allow_deletions
        )
        changed = view.apply(batch)
        apply_batch_to_database(shadow, batch)
        expected = query.evaluate(shadow)
        assert view.relation.equal_to(expected), (
            f"view diverged from recompute over {semiring.name}\n"
            f"query: {query}\nview:\n{view.relation.to_table()}\n"
            f"expected:\n{expected.to_table()}"
        )
        view.relation.check_consistency()
        if batch.has_deletions:
            # rings delete through negated deltas, everything else through
            # the targeted delete/rederive pass; bounded recomputation is
            # only the last-resort fallback and must not engage here
            expected_mode = (
                "incremental" if semiring.has_negation else "delete_rederive"
            )
            assert view.last_apply_mode == expected_mode
        # the changed-report must agree with the new state tuple-for-tuple
        for tup, value in changed.items():
            assert view.relation.annotation(tup) == value
        # base relations stayed in sync with the shadow
        for name in BASE_SCHEMAS:
            assert database.relation(name).equal_to(shadow.relation(name))


@pytest.mark.parametrize("storage", ("row", "columnar"))
@pytest.mark.parametrize("semiring_name", VIEW_SEMIRING_NAMES)
@DIFFERENTIAL_SETTINGS
@given(data=st.data())
def test_insert_streams_match_recompute(semiring_name, storage, data):
    _run_stream(semiring_name, data, allow_deletions=False, storage=storage)


@pytest.mark.parametrize("storage", ("row", "columnar"))
@pytest.mark.parametrize("semiring_name", VIEW_SEMIRING_NAMES)
@DIFFERENTIAL_SETTINGS
@given(data=st.data())
def test_mixed_streams_match_recompute(semiring_name, storage, data):
    """Insert/delete streams agree with recompute over *every* semiring."""
    _run_stream(semiring_name, data, allow_deletions=True, storage=storage)


@pytest.mark.parametrize("semiring_name", VIEW_SEMIRING_NAMES)
@DIFFERENTIAL_SETTINGS
@given(data=st.data())
def test_view_delta_compiler_matches_recompute(semiring_name, data):
    """The stateless delta compiler: old result + Δ == new result."""
    semiring = get_semiring(semiring_name)
    query, _ = data.draw(ra_queries(), label="query")
    database = data.draw(view_databases(semiring), label="database")
    batch, _ = _draw_batch(
        data,
        semiring,
        database,
        2000,
        allow_deletions=semiring.has_negation,
    )
    deltas = batch_deltas(database, batch)
    delta = view_delta(query, database, deltas)
    result = query.evaluate(database)  # pre-update result
    apply_batch_to_database(database, batch)
    apply_delta(result, delta)
    expected = query.evaluate(database)
    assert result.equal_to(expected), (
        f"delta compiler diverged over {semiring.name}\nquery: {query}\n"
        f"old+delta:\n{result.to_table()}\nexpected:\n{expected.to_table()}"
    )
    result.check_consistency()


def test_delete_rederive_triggers_without_negation():
    """Deletions over a semiring without negation use the targeted pass."""
    from repro import Database, NaturalsSemiring, Q

    database = Database(NaturalsSemiring())
    database.create("R", ["a", "b"], [(("1", "2"), 2), (("2", "3"), 1)])
    database.create("S", ["b", "c"], [(("2", "x"), 3)])
    query = Q.relation("R").join(Q.relation("S")).project("a", "c")
    view = MaterializedView(query, database)
    view.apply(UpdateBatch(insertions={"R": [(("4", "2"), 1)]}))
    assert view.last_apply_mode == "incremental"
    changed = view.apply(UpdateBatch(deletions={"R": [("1", "2")]}))
    assert view.last_apply_mode == "delete_rederive"
    assert not view.supports_deletions
    assert view.relation.equal_to(query.evaluate(database))
    assert changed  # the ('1','x') tuple left the view
    view.relation.check_consistency()


def test_bounded_recompute_remains_available_as_fallback():
    """_apply_by_recompute still restores the view from the database."""
    from repro import Database, NaturalsSemiring, Q

    database = Database(NaturalsSemiring())
    database.create("R", ["a", "b"], [(("1", "2"), 2), (("2", "3"), 1)])
    database.create("S", ["b", "c"], [(("2", "x"), 3)])
    query = Q.relation("R").join(Q.relation("S")).project("a", "c")
    view = MaterializedView(query, database)
    changed = view._apply_by_recompute(UpdateBatch(deletions={"R": [("1", "2")]}))
    assert view.last_apply_mode == "recompute"
    assert view.relation.equal_to(query.evaluate(database))
    assert changed
    view.relation.check_consistency()


def test_changed_report_excludes_absorbed_updates():
    # Regression: a dominated (idempotent) re-insert changes nothing and must
    # not appear in apply's changed-tuples report.
    from repro import Database, Q, get_semiring

    database = Database(get_semiring("tropical"))
    database.create("R", ["a", "b"], [(("1", "2"), 2.0)])
    view = MaterializedView(Q.relation("R"), database)
    assert view.apply(UpdateBatch(insertions={"R": [(("1", "2"), 5.0)]})) == {}
    assert view.relation.annotation(("1", "2")) == 2.0
    changed = view.apply(UpdateBatch(insertions={"R": [(("1", "2"), 0.5)]}))
    assert list(changed.values()) == [0.5]


def test_batch_deltas_refuses_deletions_without_negation():
    from repro import Database, NaturalsSemiring
    from repro.errors import SemiringError

    database = Database(NaturalsSemiring())
    database.create("R", ["a", "b"], [(("1", "2"), 2)])
    with pytest.raises(SemiringError):
        batch_deltas(database, UpdateBatch(deletions={"R": [("1", "2")]}))
