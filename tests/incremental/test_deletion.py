"""Incremental deletion: DRed, ring and provenance-assisted paths.

The maintained :class:`IncrementalDatalog` must agree with from-scratch
semi-naive evaluation *annotation-for-annotation* after every step of a
random insert/delete update stream, over every supported semiring and on
both storage backends -- and :meth:`check_consistency` must hold throughout
(the maintained ``edb_annotations``, stores and database supports all agree
with a from-scratch grounding).

Alongside the differential harness, targeted tests pin which deletion
strategy engages (``last_delete_mode``): ``"dred"`` for idempotent and plain
collect-mode semirings, ``"ring"`` for ``Z``/``Z[X]``, ``"provenance"`` when
every deleted fact is tagged with a fresh variable no surviving fact
mentions, ``"noop"`` for absent tuples, and ``"rebuild"`` only as the forced
last resort.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from strategies import annotation_for

from repro.circuits import to_polynomial
from repro.circuits.nodes import Node
from repro.datalog import evaluate_program
from repro.errors import DivergenceError
from repro.incremental import IncrementalDatalog, UpdateBatch
from repro.relations.database import Database
from repro.semirings import get_semiring

TC_PROGRAM = """
T(x, y) :- R(x, y).
T(x, z) :- R(x, y), T(y, z).
"""

#: B, N, Tropical, PosBool[X], Z, Z[X], N[X] and circuits -- both engine
#: regimes, both ring paths, and both provenance representations.
DELETION_SEMIRING_NAMES = (
    "bool",
    "bag",
    "tropical",
    "posbool",
    "z",
    "zx",
    "nx",
    "circuit",
)

NODES = ("a", "b", "c", "d", "e")

DELETION_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def _normalize(annotations):
    """Circuit equality is structural; compare via the denoted polynomials."""
    return {
        atom: (to_polynomial(value) if isinstance(value, Node) else value)
        for atom, value in annotations.items()
    }


def _assert_matches_fresh(maintained, database):
    fresh = evaluate_program(
        TC_PROGRAM, database, engine="seminaive", on_divergence="skip"
    )
    assert maintained.result.divergent_atoms == fresh.divergent_atoms
    assert _normalize(maintained.result.annotations) == _normalize(fresh.annotations)


@pytest.mark.parametrize("storage", ("row", "columnar"))
@pytest.mark.parametrize("semiring_name", DELETION_SEMIRING_NAMES)
@DELETION_SETTINGS
@given(data=st.data())
def test_mixed_streams_match_fresh_evaluation(semiring_name, storage, data):
    semiring = get_semiring(semiring_name)
    database = Database(semiring)
    database.create("R", ["x", "y"], storage=storage)
    maintained = IncrementalDatalog(
        TC_PROGRAM, database, on_divergence="skip", storage=storage
    )
    index = 0
    steps = data.draw(st.integers(min_value=2, max_value=6), label="steps")
    for step in range(steps):
        support = sorted(
            tup.values_for(("x", "y")) for tup in database.relation("R")
        )
        if support and data.draw(st.booleans(), label=f"delete {step}?"):
            count = data.draw(
                st.integers(min_value=1, max_value=min(2, len(support))),
                label=f"deletes {step}",
            )
            rows = [
                data.draw(st.sampled_from(support), label=f"delete row {step}.{i}")
                for i in range(count)
            ]
            maintained.remove("R", rows)
            assert maintained.last_delete_mode in ("dred", "ring", "provenance")
        else:
            entries = []
            for _ in range(
                data.draw(st.integers(min_value=1, max_value=3), label=f"ins {step}")
            ):
                values = (
                    data.draw(st.sampled_from(NODES)),
                    data.draw(st.sampled_from(NODES)),
                )
                index += 1
                entries.append((values, annotation_for(semiring, index, data.draw)))
            maintained.insert("R", entries)
        _assert_matches_fresh(maintained, database)
        maintained.check_consistency()


@pytest.mark.parametrize("storage", ("row", "columnar"))
@pytest.mark.parametrize("semiring_name", ("bool", "bag"))
def test_removing_an_absent_fact_is_a_noop(semiring_name, storage):
    semiring = get_semiring(semiring_name)
    database = Database(semiring)
    database.create("R", ["x", "y"], [(("a", "b"), 1)], storage=storage)
    maintained = IncrementalDatalog(TC_PROGRAM, database, storage=storage)
    before = dict(maintained.result.annotations)
    engine = maintained._engine
    maintained.remove("R", [("x", "y")])
    assert maintained.last_delete_mode == "noop"
    assert maintained._engine is engine
    assert maintained.result.annotations == before
    maintained.check_consistency()


def test_idempotent_deletion_uses_dred_without_rebuilding():
    semiring = get_semiring("tropical")
    database = Database(semiring)
    database.create(
        "R",
        ["x", "y"],
        [(("a", "b"), 1.0), (("b", "c"), 2.0), (("a", "c"), 5.0), (("c", "d"), 1.0)],
    )
    maintained = IncrementalDatalog(TC_PROGRAM, database)
    engine = maintained._engine
    maintained.remove("R", [("b", "c")])
    assert maintained.last_delete_mode == "dred"
    assert maintained._engine is engine
    # ("a", "c") survives through its direct edge; ("a", "d") must have been
    # re-derived through the surviving path with the higher cost
    _assert_matches_fresh(maintained, database)
    maintained.check_consistency()


def test_ring_deletion_cancels_through_negative_deltas():
    semiring = get_semiring("z")
    database = Database(semiring)
    database.create("R", ["x", "y"], [(("a", "b"), 2), (("b", "c"), -3)])
    maintained = IncrementalDatalog(TC_PROGRAM, database)
    engine = maintained._engine
    maintained.remove("R", [("a", "b")])
    assert maintained.last_delete_mode == "ring"
    assert maintained._engine is engine
    assert ("a", "b") not in database.relation("R")
    _assert_matches_fresh(maintained, database)
    maintained.check_consistency()


@pytest.mark.parametrize("semiring_name", ("nx", "circuit"))
def test_provenance_assisted_deletion_patches_the_cached_result(semiring_name):
    semiring = get_semiring(semiring_name)
    database = Database(semiring)
    database.create(
        "R",
        ["x", "y"],
        [
            (("a", "b"), semiring.var("p")),
            (("b", "c"), semiring.var("q")),
            (("a", "c"), semiring.var("r")),
            (("c", "d"), semiring.var("s")),
        ],
    )
    maintained = IncrementalDatalog(TC_PROGRAM, database)
    assert maintained.result is not None  # prime the cache
    engine = maintained._engine
    maintained.remove("R", [("b", "c")])
    assert maintained.last_delete_mode == "provenance"
    assert maintained._engine is engine
    _assert_matches_fresh(maintained, database)
    maintained.check_consistency()


def test_provenance_license_requires_bare_fresh_variables():
    semiring = get_semiring("nx")
    # 1. a non-variable annotation on the deleted fact blocks the patch
    database = Database(semiring)
    database.create(
        "R",
        ["x", "y"],
        [
            (("a", "b"), semiring.var("p") * semiring.var("q")),
            (("b", "c"), semiring.var("r")),
        ],
    )
    maintained = IncrementalDatalog(TC_PROGRAM, database)
    assert maintained.result is not None
    maintained.remove("R", [("a", "b")])
    assert maintained.last_delete_mode == "dred"
    _assert_matches_fresh(maintained, database)
    # 2. a deleted variable shared with a surviving fact blocks it too
    database = Database(semiring)
    database.create(
        "R",
        ["x", "y"],
        [(("a", "b"), semiring.var("s")), (("b", "c"), semiring.var("s"))],
    )
    maintained = IncrementalDatalog(TC_PROGRAM, database)
    assert maintained.result is not None
    maintained.remove("R", [("a", "b")])
    assert maintained.last_delete_mode == "dred"
    _assert_matches_fresh(maintained, database)
    maintained.check_consistency()


def test_rebuild_is_only_the_forced_last_resort(monkeypatch):
    database = Database(get_semiring("bool"))
    database.create("R", ["x", "y"], [("a", "b"), ("b", "c")])
    maintained = IncrementalDatalog(TC_PROGRAM, database)

    def explode(*args, **kwargs):
        raise DivergenceError("forced rederive blow-up")

    monkeypatch.setattr(maintained._engine, "delete_edb", explode)
    maintained.remove("R", [("b", "c")])
    assert maintained.last_delete_mode == "rebuild"
    _assert_matches_fresh(maintained, database)
    maintained.check_consistency()


def test_apply_runs_deletions_before_insertions():
    semiring = get_semiring("tropical")
    database = Database(semiring)
    database.create("R", ["x", "y"], [(("a", "b"), 1.0), (("b", "c"), 2.0)])
    maintained = IncrementalDatalog(TC_PROGRAM, database)
    maintained.apply(
        UpdateBatch(
            insertions={"R": [(("b", "d"), 4.0)]},
            deletions={"R": [("b", "c")]},
        )
    )
    assert maintained.last_delete_mode == "dred"
    _assert_matches_fresh(maintained, database)
    maintained.check_consistency()


def test_delete_span_reports_mode_and_work():
    from repro.obs import tracing

    database = Database(get_semiring("bool"))
    database.create(
        "R", ["x", "y"], [("a", "b"), ("b", "c"), ("c", "d"), ("a", "c")]
    )
    maintained = IncrementalDatalog(TC_PROGRAM, database)
    with tracing() as sink:
        maintained.remove("R", [("b", "c")])
    (record,) = sink.find("incremental.delete")
    assert record.attributes["predicate"] == "R"
    assert record.attributes["deletes"] == 1
    assert record.attributes["mode"] == "dred"
    assert record.attributes["overdeleted"] >= 1
    assert record.attributes["rederived"] >= 0
    assert "rounds" in record.attributes


def test_cancellation_keeps_maintained_rounds_and_indexes():
    # Regression: a negative insertion that cancels an EDB fact exactly used
    # to rebuild the whole engine, resetting the maintained rounds/indexes.
    semiring = get_semiring("z")
    database = Database(semiring)
    database.create("R", ["x", "y"], [(("a", "b"), 2), (("b", "c"), 1)])
    maintained = IncrementalDatalog(TC_PROGRAM, database)
    engine = maintained._engine
    rounds_before = maintained._rounds
    maintained.insert("R", [(("a", "b"), -2)])  # exact cancellation
    assert maintained._engine is engine
    assert maintained._rounds >= rounds_before  # accumulated, never reset
    _assert_matches_fresh(maintained, database)
    maintained.check_consistency()
