"""IncrementalDatalog vs from-scratch semi-naive evaluation.

The maintained fixpoint must agree with ``evaluate_program`` on the same
(post-update) database after every insertion batch -- across the idempotent
direct mode (B, Tropical), the non-idempotent collect-and-solve mode (N∞
with divergence handling, N[X] with skip), and randomized recursive
programs from ``tests/strategies.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from strategies import DOMAIN, annotation_for, programs_with_databases

from repro.datalog import evaluate_program
from repro.errors import DatalogError
from repro.incremental import IncrementalDatalog
from repro.relations.database import Database
from repro.semirings import get_semiring
from repro.workloads import random_edge_insert_stream, random_graph_database

TC_PROGRAM = """
T(x, y) :- R(x, y).
T(x, z) :- R(x, y), T(y, z).
"""

STREAM_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_matches_fresh(maintained, program, database, *, on_divergence="top"):
    fresh = evaluate_program(
        program, database, engine="seminaive", on_divergence=on_divergence
    )
    assert maintained.result.divergent_atoms == fresh.divergent_atoms
    assert maintained.result.annotations == fresh.annotations


@pytest.mark.parametrize("storage", ["row", "columnar"])
@pytest.mark.parametrize("semiring_name", ["bool", "tropical", "natinf"])
def test_edge_stream_matches_fresh_evaluation(semiring_name, storage):
    semiring = get_semiring(semiring_name)
    database = random_graph_database(semiring, nodes=8, edge_probability=0.2, seed=3)
    maintained = IncrementalDatalog(TC_PROGRAM, database, storage=storage)
    _assert_matches_fresh(maintained, TC_PROGRAM, database)
    stream = random_edge_insert_stream(
        semiring, nodes=8, batches=5, edges_per_batch=2, seed=11
    )
    for batch in stream:
        maintained.insert("R", batch)
        _assert_matches_fresh(maintained, TC_PROGRAM, database)


def test_insertion_creating_cycle_diverges_like_fresh_run():
    semiring = get_semiring("natinf")
    database = Database(semiring)
    database.create("R", ["x", "y"], [(("a", "b"), 1), (("b", "c"), 1)])
    maintained = IncrementalDatalog(TC_PROGRAM, database)
    assert not maintained.result.divergent_atoms
    maintained.insert("R", [(("c", "a"), 1)])  # closes the cycle
    assert maintained.result.divergent_atoms
    _assert_matches_fresh(maintained, TC_PROGRAM, database)


def test_provenance_polynomials_with_skip():
    semiring = get_semiring("nx")
    database = Database(semiring)
    database.create(
        "R",
        ["x", "y"],
        [(("a", "b"), semiring.var("p")), (("b", "c"), semiring.var("r"))],
    )
    maintained = IncrementalDatalog(TC_PROGRAM, database, on_divergence="skip")
    maintained.insert("R", [(("c", "d"), semiring.var("s"))])
    _assert_matches_fresh(maintained, TC_PROGRAM, database, on_divergence="skip")
    # a cycle makes some atoms divergent; skip keeps the engines agreeing
    maintained.insert("R", [(("d", "a"), semiring.var("t"))])
    assert maintained.result.divergent_atoms
    _assert_matches_fresh(maintained, TC_PROGRAM, database, on_divergence="skip")


def test_remove_runs_the_dred_pass_incrementally():
    semiring = get_semiring("bool")
    database = Database(semiring)
    database.create("R", ["x", "y"], [("a", "b"), ("b", "c"), ("c", "d")])
    maintained = IncrementalDatalog(TC_PROGRAM, database)
    assert len(maintained.result.annotations) == 6
    engine_before = maintained._engine
    maintained.remove("R", [("b", "c")])
    assert maintained.last_delete_mode == "dred"
    assert maintained._engine is engine_before  # no rebuild
    _assert_matches_fresh(maintained, TC_PROGRAM, database)
    assert len(maintained.result.annotations) == 2
    maintained.check_consistency()


def test_negative_insertion_cancelling_a_fact_stays_incremental():
    # Regression: over Z a negative insertion can cancel an EDB fact exactly.
    # The cancellation now routes through the instantiation-graph deletion
    # pass -- the maintained engine must survive (no rebuild) and still agree
    # with fresh evaluation.
    semiring = get_semiring("z")
    database = Database(semiring)
    database.create("R", ["x", "y"], [(("a", "b"), 2), (("b", "c"), 1)])
    maintained = IncrementalDatalog(TC_PROGRAM, database)
    engine_before = maintained._engine
    maintained.insert("R", [(("a", "b"), -2)])
    assert maintained._engine is engine_before  # cancelled in place
    assert ("a", "b") not in database.relation("R")
    _assert_matches_fresh(maintained, TC_PROGRAM, database)
    assert set(maintained.result.annotations) == {
        atom for atom in maintained.result.annotations if atom.values == ("b", "c")
    }
    maintained.check_consistency()
    # a partial (non-cancelling) negative insertion stays incremental
    maintained.insert("R", [(("b", "c"), 5), (("c", "d"), 3)])
    maintained.insert("R", [(("b", "c"), -2)])
    _assert_matches_fresh(maintained, TC_PROGRAM, database)
    maintained.check_consistency()


def test_zero_valued_insertion_is_a_noop():
    semiring = get_semiring("natinf")
    database = Database(semiring)
    database.create("R", ["x", "y"], [(("a", "b"), 1)])
    maintained = IncrementalDatalog(TC_PROGRAM, database)
    before = dict(maintained.result.annotations)
    maintained.insert("R", [(("x", "y"), 0)])  # zero annotation: no support
    assert maintained.result.annotations == before
    assert ("x", "y") not in database.relation("R")


def test_insert_rejects_non_edb_predicates():
    database = Database(get_semiring("bool"))
    database.create("R", ["x", "y"], [("a", "b")])
    maintained = IncrementalDatalog(TC_PROGRAM, database)
    with pytest.raises(DatalogError):
        maintained.insert("T", [("a", "b")])
    with pytest.raises(DatalogError):
        maintained.insert("unknown", [("a", "b")])


def test_dominated_reinsert_is_a_noop():
    semiring = get_semiring("tropical")
    database = Database(semiring)
    database.create("R", ["x", "y"], [(("a", "b"), 2.0), (("b", "c"), 1.0)])
    maintained = IncrementalDatalog(TC_PROGRAM, database)
    before = dict(maintained.result.annotations)
    maintained.insert("R", [(("a", "b"), 5.0)])  # min(2, 5) == 2: dominated
    assert maintained.result.annotations == before
    maintained.insert("R", [(("a", "b"), 0.5)])  # improvement must propagate
    _assert_matches_fresh(maintained, TC_PROGRAM, database)
    assert maintained.result.annotations != before


@pytest.mark.parametrize("semiring_name", ["bool", "tropical", "bag", "posbool"])
@STREAM_SETTINGS
@given(data=st.data())
def test_random_programs_under_insert_streams(semiring_name, data):
    program, database = data.draw(
        programs_with_databases(semiring_name), label="instance"
    )
    semiring = database.semiring
    maintained = IncrementalDatalog(program, database, on_divergence="skip")
    _assert_matches_fresh(maintained, program, database, on_divergence="skip")
    if not program.edb_predicates:
        return  # purely intensional program: nothing to insert into
    index = 5000
    for _ in range(data.draw(st.integers(min_value=1, max_value=3), label="batches")):
        predicate = data.draw(
            st.sampled_from(sorted(program.edb_predicates)), label="predicate"
        )
        arity = program.arity(predicate)
        rows = []
        for _ in range(data.draw(st.integers(min_value=1, max_value=2))):
            values = tuple(data.draw(st.sampled_from(DOMAIN)) for _ in range(arity))
            index += 1
            rows.append((values, annotation_for(semiring, index, data.draw)))
        maintained.insert(predicate, rows)
        _assert_matches_fresh(maintained, program, database, on_divergence="skip")
