"""The worker entry points, called in-process.

``repro.parallel.worker`` promises that its task functions are ordinary
functions of their payloads -- the pool calls them from worker processes,
and these tests call them directly in the parent, so their behaviour is
pinned where coverage tooling can see it (subprocess execution is invisible
to the coverage run).  Each test builds the exact payloads the coordinators
ship and checks the worker's return value against the serial engine's
answer for the same slice of work.
"""

from __future__ import annotations

import pickle

from repro.algebra import Q
from repro.datalog.seminaive import _SemiNaiveEngine
from repro.engine.kernels import combine_contributions
from repro.parallel import worker as worker_mod
from repro.parallel.config import capture_worker_config
from repro.parallel.merge import merge_relations
from repro.parallel.worker import (
    probe_configuration,
    run_datalog_tasks,
    run_query_task,
)
from repro.relations.krelation import KRelation
from repro.semirings import NaturalsSemiring
from repro.workloads import (
    chain_graph_database,
    random_graph_database,
    transitive_closure_program,
)


def _clear_broadcast_cache():
    worker_mod._BROADCAST.clear()


def _two_hop_query():
    return (
        Q.relation("R")
        .rename({"y": "mid"})
        .join(Q.relation("S").rename({"x": "mid"}))
        .project("x", "y")
    )


def test_run_query_task_partials_merge_to_serial_result():
    _clear_broadcast_cache()
    semiring = NaturalsSemiring()
    database = random_graph_database(semiring, nodes=10, seed=3)
    database.register(
        "S", random_graph_database(semiring, nodes=8, seed=4).relation("R")
    )
    query = _two_hop_query()
    serial = query.evaluate(database)

    driver = database.relation("R")
    rest = {"S": database.relation("S")}
    blob = pickle.dumps((query, semiring, "R", rest, "row"))
    items = list(driver.items())
    partials = []
    for chunk in (items[0::2], items[1::2]):
        partition = KRelation(semiring, driver.schema, storage=driver.storage)
        partition.merge_delta(chunk)
        partials.append(
            run_query_task("tok-query", blob, pickle.dumps(partition))
        )
    merged = merge_relations(partials, partials[0])
    assert merged.equal_to(serial)


def test_run_datalog_tasks_matches_local_fire():
    _clear_broadcast_cache()
    semiring = NaturalsSemiring()
    database = chain_graph_database(semiring, length=8, seed=5)
    program = transitive_closure_program(linear=True)
    blob = pickle.dumps((program, database, False, "row"))

    # Reference: the parent's own engine runs the seed round serially.
    reference = _SemiNaiveEngine(
        program, database, collect=False, maintain_edb=False, storage="row"
    )
    out = reference._fresh()
    for plan in reference.seed_plans:
        reference._fire(plan, reference.stores[plan.driver.predicate].rows, out)
    expected_seed = {
        predicate: {
            values: [combine_contributions(semiring, batch)]
            for values, batch in emit.items()
        }
        for predicate, emit in out.items()
        if emit
    }
    delta = reference._merge(out)

    # Worker, seed task over all driver rows, split into two index ranges:
    # folding the two emits must reproduce the serial seed contributions.
    rows = reference.stores[reference.seed_plans[0].driver.predicate].rows
    halves = [list(range(0, len(rows), 2)), list(range(1, len(rows), 2))]
    folded: dict = {}
    for indexes in halves:
        emitted = run_datalog_tasks(
            "tok-datalog", blob, [("seed", 0, indexes)]
        )
        for predicate, emit in emitted.items():
            destination = folded.setdefault(predicate, {})
            for head, batch in emit.items():
                destination.setdefault(head, []).extend(batch)
    assert set(folded) == set(expected_seed)
    for predicate, emit in expected_seed.items():
        assert set(folded[predicate]) == set(emit)
        for head, batch in emit.items():
            assert combine_contributions(
                semiring, folded[predicate][head]
            ) == combine_contributions(semiring, batch)

    # Worker, delta task: shipped rows + aligned annotations, checked against
    # the reference engine firing the same plan with ``driver_annotations``.
    predicate = "Q"
    delta_rows = delta[predicate]
    stored = reference.stores[predicate].relation._annotations
    annotations = [stored[row[1]] for row in delta_rows]
    emitted = run_datalog_tasks(
        "tok-datalog",
        blob,
        [("delta", predicate, 0, delta_rows, annotations)],
    )
    out = reference._fresh()
    reference._fire(
        reference.delta_plans[predicate][0],
        delta_rows,
        out,
        driver_annotations=dict(zip([row[1] for row in delta_rows], annotations)),
    )
    expected_delta = {
        pred: {
            values: combine_contributions(semiring, batch)
            for values, batch in emit.items()
        }
        for pred, emit in out.items()
        if emit
    }
    assert {
        pred: {values: batch[0] for values, batch in emit.items()}
        for pred, emit in emitted.items()
    } == expected_delta


def test_broadcast_cache_reuses_and_evicts():
    _clear_broadcast_cache()
    semiring = NaturalsSemiring()
    database = chain_graph_database(semiring, length=4, seed=7)
    program = transitive_closure_program(linear=True)
    blob = pickle.dumps((program, database, False, "row"))
    first = run_datalog_tasks("tok-a", blob, [("seed", 0, [0])])
    again = run_datalog_tasks("tok-a", blob, [("seed", 0, [0])])
    assert first == again
    assert list(worker_mod._BROADCAST) == ["tok-a"]
    for index in range(worker_mod._BROADCAST_LIMIT + 1):
        run_datalog_tasks(f"tok-extra-{index}", blob, [("seed", 0, [0])])
    assert len(worker_mod._BROADCAST) == worker_mod._BROADCAST_LIMIT
    assert "tok-a" not in worker_mod._BROADCAST  # least recently used, evicted


def test_probe_and_initialize_agree_with_parent_config():
    from repro.parallel.config import apply_worker_config
    from repro.relations.storage import resolve_storage_kind

    config = capture_worker_config()
    apply_worker_config(config)  # replaying the parent's config is a no-op
    storage_kind, debug_tuples, tracing = probe_configuration()
    assert storage_kind == resolve_storage_kind(None)
    assert isinstance(debug_tuples, bool)
    assert isinstance(tracing, bool)
