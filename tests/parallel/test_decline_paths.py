"""Every decline path falls back to the serial executor, never to a wrong answer.

The parallel executor is an *optimisation with an exactness proof*, and the
proof has hypotheses: linear driver occurrence, partition-stable unions, a
merge-safe semiring, picklable plans.  Each test here violates exactly one
hypothesis and checks both halves of the contract -- the fan-out declines
(returns ``None``) and the public entry points still produce the serial
answer.
"""

from __future__ import annotations

import pytest

from repro.algebra import Q
from repro.algebra.predicates import OpaquePredicate
from repro.circuits import CircuitSemiring
from repro.datalog import evaluate_program
from repro.datalog.seminaive import _SemiNaiveEngine
from repro.obs.semiring import InstrumentedSemiring
from repro.parallel import ParallelExecutor
from repro.parallel.datalog import run_engine_parallel
from repro.parallel.merge import parallel_merge_ops
from repro.parallel.queries import execute_query_parallel
from repro.planner.cost import choose_partitions as _real_choose_partitions
from repro.semirings import NaturalsSemiring, TropicalSemiring
from repro.workloads import (
    chain_graph_database,
    random_graph_database,
    transitive_closure_program,
)


@pytest.fixture
def eager(monkeypatch):
    def eager_choice(rows, workers):
        return _real_choose_partitions(rows, workers, row_overhead=1.0)

    from repro.parallel import datalog as parallel_datalog
    from repro.parallel import queries as parallel_queries

    monkeypatch.setattr(parallel_queries, "choose_partitions", eager_choice)
    monkeypatch.setattr(parallel_datalog, "choose_partitions", eager_choice)


@pytest.fixture(scope="module")
def pool2():
    with ParallelExecutor(2, start_method="fork") as executor:
        yield executor


def graph_db(semiring=None, **kwargs):
    kwargs.setdefault("nodes", 12)
    kwargs.setdefault("edge_probability", 0.35)
    return random_graph_database(semiring or NaturalsSemiring(), **kwargs)


def test_self_join_declines(eager, pool2):
    """A relation referenced twice consumes two driver rows per derivation."""
    db = graph_db()
    left = Q.relation("R").rename({"y": "mid"})
    right = Q.relation("R").rename({"x": "mid"})
    query = left.join(right).project("x", "y")
    assert execute_query_parallel(query.optimized(db), db, parallel=pool2) is None
    serial = query.evaluate(db)
    assert query.evaluate(db, parallel=pool2).equal_to(serial)


def test_union_with_replicated_branch_declines(eager, pool2):
    """Summing ``R_i ∪ S`` over partitions would count ``S`` once per worker."""
    db = graph_db()
    small = graph_db(nodes=6, edge_probability=0.6, seed=17)
    db.register("S", small.relation("R"))
    query = Q.relation("R").union(Q.relation("S"))
    assert execute_query_parallel(query.optimized(db), db, parallel=pool2) is None
    serial = query.evaluate(db)
    assert query.evaluate(db, parallel=pool2).equal_to(serial)


def test_opaque_closure_predicate_falls_back(eager, pool2):
    """An unpicklable plan declines at broadcast time, transparently."""
    db = graph_db()
    query = Q.relation("R").select(
        OpaquePredicate(lambda tup: tup["x"] != tup["y"]), description="x != y"
    )
    assert execute_query_parallel(query.optimized(db), db, parallel=pool2) is None
    serial = query.evaluate(db)
    assert query.evaluate(db, parallel=pool2).equal_to(serial)


def test_collect_mode_engine_declines(eager, pool2):
    """Collect mode threads one contribution list through rounds: serial only."""
    program = transitive_closure_program(linear=True)
    db = chain_graph_database(NaturalsSemiring(), length=10)
    engine = _SemiNaiveEngine(program, db, collect=True, maintain_edb=False)
    assert run_engine_parallel(engine, max_iterations=100, parallel=pool2) is None


def test_circuit_semiring_datalog_declines(eager, pool2):
    program = transitive_closure_program(linear=True)
    db = chain_graph_database(CircuitSemiring(), length=8)
    engine = _SemiNaiveEngine(program, db, collect=False, maintain_edb=False)
    assert run_engine_parallel(engine, max_iterations=100, parallel=pool2) is None
    # The public path silently falls back and agrees with itself serially.
    serial = evaluate_program(program, db, engine="seminaive")
    par = evaluate_program(program, db, engine="seminaive", parallel=pool2)
    assert par.annotations == serial.annotations


def test_parallel_merge_ops_classification():
    assert parallel_merge_ops(NaturalsSemiring())
    assert parallel_merge_ops(TropicalSemiring())
    assert not parallel_merge_ops(CircuitSemiring())
    # Instrumentation wrappers mirror the delegate's name and so qualify --
    # the worker's wrapper counts locally, exactness is unaffected.
    assert parallel_merge_ops(InstrumentedSemiring(NaturalsSemiring()))
    assert not parallel_merge_ops(InstrumentedSemiring(CircuitSemiring()))


def test_tiny_inputs_stay_serial(pool2):
    """Without the eager fixture the cost model keeps small inputs serial."""
    db = graph_db(nodes=8, edge_probability=0.3)
    query = Q.relation("R").project("x")
    assert execute_query_parallel(query.optimized(db), db, parallel=pool2) is None
    assert query.evaluate(db, parallel=pool2).equal_to(query.evaluate(db))
