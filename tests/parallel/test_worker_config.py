"""Worker processes must resolve configuration exactly like the parent.

A ``spawn`` worker re-imports :mod:`repro` from scratch, so programmatic
parent state (a storage default set after import, a flipped tuple-debug
flag, tracing enabled by call rather than environment) is precisely what a
naive env-inheriting pool would lose.  These tests pin the capture/apply
contract in-process and then against a real spawned pool.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.parallel import (
    ParallelExecutor,
    WorkerConfig,
    apply_worker_config,
    capture_worker_config,
)
from repro.parallel.worker import probe_configuration
from repro.relations import tuples
from repro.relations.storage import resolve_storage_kind


def test_capture_reflects_programmatic_state(monkeypatch):
    monkeypatch.setenv("REPRO_STORAGE", "columnar")
    monkeypatch.setattr(tuples, "_DEBUG_TUPLES", True)
    config = capture_worker_config()
    assert config.storage_kind == "columnar"
    assert config.debug_tuples is True
    assert config.trace_target is None  # tracing off in the test session


def test_apply_sets_module_and_environment(monkeypatch):
    monkeypatch.setenv("REPRO_STORAGE", "row")
    monkeypatch.setattr(tuples, "_DEBUG_TUPLES", False)
    apply_worker_config(
        WorkerConfig(storage_kind="columnar", debug_tuples=True, trace_target=None)
    )
    try:
        assert resolve_storage_kind(None) == "columnar"
        assert tuples._DEBUG_TUPLES is True
    finally:
        monkeypatch.setenv("REPRO_STORAGE", "row")
        monkeypatch.setattr(tuples, "_DEBUG_TUPLES", False)


@pytest.mark.parametrize("start_method", ["spawn"])
def test_spawned_pool_agrees_with_parent(monkeypatch, start_method):
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{start_method} unavailable on this platform")
    # Programmatic parent state: the environment says nothing about debug
    # tuples, and the storage default is set post-import.
    monkeypatch.setenv("REPRO_STORAGE", "columnar")
    monkeypatch.delenv("REPRO_DEBUG_TUPLES", raising=False)
    monkeypatch.setattr(tuples, "_DEBUG_TUPLES", True)
    parent = (resolve_storage_kind(None), tuples._DEBUG_TUPLES)
    with ParallelExecutor(2, start_method=start_method) as executor:
        probes = executor.run_tasks(probe_configuration, [(), ()])
    assert len(probes) == 2
    for storage_kind, debug_tuples, _tracing in probes:
        assert (storage_kind, debug_tuples) == parent


def test_resolve_execution_storage_agreement_through_pool(monkeypatch):
    """The satellite contract: ``resolve_execution_storage`` pins across the pool.

    The engine resolves explicit > environment > database; workers receive
    the parent's *resolved* kind both in the worker config and in every
    broadcast engine payload, so a worker can never disagree -- asserted
    here through the config probe with the parent configured purely
    programmatically.
    """
    monkeypatch.setenv("REPRO_STORAGE", "columnar")
    with ParallelExecutor(1, start_method="fork") as executor:
        (storage_kind, _, _), = executor.run_tasks(probe_configuration, [()])
    assert storage_kind == resolve_storage_kind(None) == "columnar"
