"""The int64 guard on the merge accumulation (satellite: overflow safety).

Per-partition partials can each fit comfortably in int64 yet overflow when
the merge sums them -- the classic distributed-aggregation bug.  The merge
therefore routes batched accumulation through the same ``_INT64_GUARD`` as
the serial columnar kernels and falls back to exact Python arithmetic when
a batch could overflow.
"""

from __future__ import annotations

import pytest

from repro.engine.vectorized import numpy_available, try_merge_contributions
from repro.parallel.merge import merge_contribution_map, merge_relations
from repro.relations.krelation import KRelation
from repro.relations.schema import Schema
from repro.semirings import IntegerRing, NaturalsSemiring

NEAR_BOUNDARY = 3 << 61  # fits int64; two of them do not


def test_vectorized_merge_declines_near_boundary_batches():
    if not numpy_available():
        pytest.skip("guard only engages with a numpy runtime")
    contributions = {"k": [NEAR_BOUNDARY, NEAR_BOUNDARY]}
    assert try_merge_contributions(NaturalsSemiring(), contributions) is None


def test_merge_is_exact_past_int64():
    semiring = NaturalsSemiring()
    contributions = {"k": [NEAR_BOUNDARY, NEAR_BOUNDARY, 1]}
    merged = merge_contribution_map(semiring, contributions)
    assert merged["k"] == 2 * NEAR_BOUNDARY + 1  # exact, not wrapped

def test_merge_matches_python_fold_on_small_values():
    semiring = NaturalsSemiring()
    contributions = {i: [i, i + 1, 2] for i in range(50)}
    merged = merge_contribution_map(semiring, contributions)
    assert merged == {i: 2 * i + 3 for i in range(50)}


def test_merge_drops_zero_totals():
    semiring = IntegerRing()
    merged = merge_contribution_map(semiring, {"a": [5, -5], "b": [2, 1]})
    assert merged == {"b": 3}


def test_relation_merge_near_boundary_partials():
    """Partition partials just under the guard sum exactly across partitions."""
    semiring = NaturalsSemiring()
    schema = Schema(["a"])
    parts = []
    for _ in range(3):
        part = KRelation(semiring, schema)
        part.add({"a": 1}, NEAR_BOUNDARY)
        part.add({"a": 2}, 1)
        parts.append(part)
    merged = merge_relations(parts, parts[0])
    assert merged.annotation({"a": 1}) == 3 * NEAR_BOUNDARY
    assert merged.annotation({"a": 2}) == 3
