"""Unit tests: the partitioner, the cost decision and ``parallel=`` resolution."""

from __future__ import annotations

import pytest

from repro.parallel import ParallelExecutor, resolve_parallel
from repro.parallel.partition import partition_indexes, partition_rows
from repro.planner.cost import PARALLEL_ROW_OVERHEAD, choose_partitions


class TestChoosePartitions:
    def test_small_inputs_stay_serial(self):
        decision = choose_partitions(100, 4)
        assert decision.partitions == 1
        assert "serial" in decision.reason

    def test_large_inputs_use_all_workers(self):
        decision = choose_partitions(100_000, 4)
        assert decision.partitions == 4

    def test_fanout_capped_by_amortization(self):
        # 1500 rows over 8 workers: only 2 partitions amortize the overhead.
        assert choose_partitions(1500, 8, row_overhead=512.0).partitions == 2

    def test_single_worker_never_fans_out(self):
        assert choose_partitions(10**9, 1).partitions == 1

    def test_threshold_is_twice_the_row_overhead(self):
        below = choose_partitions(2 * PARALLEL_ROW_OVERHEAD - 1, 4)
        at = choose_partitions(2 * PARALLEL_ROW_OVERHEAD, 4)
        assert below.partitions == 1
        assert at.partitions >= 2


class TestPartitioner:
    def test_hash_partitions_cover_disjointly(self):
        rows = [(i, i % 7) for i in range(200)]
        parts = partition_rows(rows, 4, key=lambda row: row[1])
        flat = [row for part in parts for row in part]
        assert sorted(flat) == sorted(rows)
        assert len(parts) == 4

    def test_equal_keys_land_together(self):
        rows = [(i, i % 5) for i in range(100)]
        parts = partition_rows(rows, 3, key=lambda row: row[1])
        for key in range(5):
            homes = [
                index
                for index, part in enumerate(parts)
                if any(row[1] == key for row in part)
            ]
            assert len(homes) == 1

    def test_round_robin_without_key(self):
        parts = partition_rows(list(range(10)), 3)
        assert parts == [[0, 3, 6, 9], [1, 4, 7], [2, 5, 8]]

    def test_single_partition_is_identity(self):
        rows = [1, 2, 3]
        assert partition_rows(rows, 1) == [rows]

    def test_indexes_mirror_rows(self):
        rows = [("a", 1), ("b", 2), ("c", 1), ("d", 3)]
        by_rows = partition_rows(rows, 2, key=lambda row: row[1])
        by_index = partition_indexes(rows, 2, key=lambda row: row[1])
        assert [[rows[i] for i in part] for part in by_index] == by_rows
        flat = sorted(i for part in by_index for i in part)
        assert flat == list(range(len(rows)))


class TestResolveParallel:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert resolve_parallel(None) == 0

    @pytest.mark.parametrize("raw,expected", [("0", 0), ("off", 0), ("3", 3)])
    def test_environment_values(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_PARALLEL", raw)
        assert resolve_parallel(None) == expected

    def test_environment_auto_uses_cpu_count(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_PARALLEL", "auto")
        assert resolve_parallel(None) == (os.cpu_count() or 1)

    def test_environment_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "many")
        with pytest.raises(ValueError, match="REPRO_PARALLEL"):
            resolve_parallel(None)

    def test_explicit_values(self):
        import os

        assert resolve_parallel(False) == 0
        assert resolve_parallel(0) == 0
        assert resolve_parallel(2) == 2
        assert resolve_parallel(True) == (os.cpu_count() or 1)
        with pytest.raises(ValueError):
            resolve_parallel(-1)

    def test_executor_passes_through(self):
        executor = ParallelExecutor(1, start_method="fork")
        try:
            assert resolve_parallel(executor) is executor
        finally:
            executor.close()

    def test_explicit_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "8")
        assert resolve_parallel(2) == 2
        assert resolve_parallel(0) == 0
