"""Three-way differential harness: serial-row vs serial-columnar vs parallel.

Every cell of the matrix -- queries, datalog fixpoints and incremental
maintenance, crossed with semirings from plain booleans to provenance
polynomials and circuits -- must produce *annotation-identical* results
whichever executor computes them.  Parallelism here is an implementation
detail licensed by Proposition 3.4; these tests are the contract that it
never becomes observable.

Semirings whose merge cannot be parallelised (circuits: identity-interned
nodes) must *decline* into the serial path rather than approximate, so they
stay in the matrix and are asserted equal like everyone else.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra import Q
from repro.circuits import CircuitSemiring
from repro.datalog import evaluate_program
from repro.incremental import IncrementalDatalog
from repro.parallel import ParallelExecutor
from repro.parallel.merge import parallel_merge_ops
from repro.parallel.queries import execute_query_parallel
from repro.planner.cost import choose_partitions as _real_choose_partitions
from repro.semirings import (
    BooleanSemiring,
    IntegerRing,
    NaturalsSemiring,
    PosBoolSemiring,
    ProvenancePolynomialSemiring,
    TropicalSemiring,
)
from repro.workloads import (
    chain_graph_database,
    random_annotation,
    random_graph_database,
    transitive_closure_program,
)

SEMIRINGS = [
    BooleanSemiring(),
    NaturalsSemiring(),
    IntegerRing(),
    TropicalSemiring(),
    PosBoolSemiring(),
    ProvenancePolynomialSemiring(),
    CircuitSemiring(),
]
IDS = [s.name for s in SEMIRINGS]


@pytest.fixture
def eager(monkeypatch):
    """Fan out on tiny test inputs: drop the per-row overhead to one."""

    def eager_choice(rows, workers):
        return _real_choose_partitions(rows, workers, row_overhead=1.0)

    from repro.parallel import datalog as parallel_datalog
    from repro.parallel import queries as parallel_queries

    monkeypatch.setattr(parallel_queries, "choose_partitions", eager_choice)
    monkeypatch.setattr(parallel_datalog, "choose_partitions", eager_choice)


@pytest.fixture(scope="module")
def pool2():
    with ParallelExecutor(2, start_method="fork") as executor:
        yield executor


def two_relation_db(semiring, *, nodes=12, seed=0):
    """A larger driver candidate ``R`` plus a smaller replicated ``S``."""
    db = random_graph_database(
        semiring, nodes=nodes, edge_probability=0.35, seed=seed
    )
    small = random_graph_database(
        semiring, nodes=nodes // 2, edge_probability=0.6, seed=seed + 17
    )
    db.register("S", small.relation("R"))
    return db


def two_hop_query():
    """``R(x, mid) ⋈ S(mid, y)`` projected to endpoints (the merge sums)."""
    left = Q.relation("R").rename({"y": "mid"})
    right = Q.relation("S").rename({"x": "mid"})
    return left.join(right).project("x", "y")


# -- queries ---------------------------------------------------------------------
@pytest.mark.parametrize("semiring", SEMIRINGS, ids=IDS)
def test_query_three_way(semiring, eager, pool2):
    db = two_relation_db(semiring)
    query = two_hop_query()
    row = query.evaluate(db, storage="row")
    columnar = query.evaluate(db, storage="columnar")
    assert row.equal_to(columnar)
    partial = execute_query_parallel(query.optimized(db), db, parallel=pool2)
    if parallel_merge_ops(semiring):
        assert partial is not None, "qualifying semiring must fan out"
        assert partial.equal_to(row)
    else:
        assert partial is None, "circuit merge must decline, not approximate"
    # Through the public entry point the decline is invisible either way.
    assert query.evaluate(db, parallel=pool2).equal_to(row)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_query_across_worker_counts(workers, eager):
    semiring = NaturalsSemiring()
    db = two_relation_db(semiring, nodes=14, seed=2)
    query = two_hop_query()
    serial = query.evaluate(db)
    with ParallelExecutor(workers, start_method="fork") as executor:
        assert query.evaluate(db, parallel=executor).equal_to(serial)


# -- datalog fixpoints -----------------------------------------------------------
@pytest.mark.parametrize("semiring", SEMIRINGS, ids=IDS)
def test_datalog_three_way(semiring, eager, pool2):
    """Linear transitive closure over an acyclic chain, every semiring."""
    program = transitive_closure_program(linear=True)
    db = chain_graph_database(semiring, length=16, seed=3)
    row = evaluate_program(program, db, engine="seminaive", storage="row")
    columnar = evaluate_program(program, db, engine="seminaive", storage="columnar")
    par = evaluate_program(program, db, engine="seminaive", parallel=pool2)
    assert row.annotations == columnar.annotations
    assert par.annotations == row.annotations
    assert par.iterations == row.iterations


@pytest.mark.parametrize(
    "semiring",
    [BooleanSemiring(), TropicalSemiring(), PosBoolSemiring()],
    ids=["B", "Tropical", "PosBool(B)"],
)
def test_datalog_cyclic_graph(semiring, eager, pool2):
    """Cyclic graphs: idempotent fixpoints converge identically in parallel."""
    program = transitive_closure_program(linear=True)
    db = random_graph_database(semiring, nodes=11, edge_probability=0.3, seed=5)
    serial = evaluate_program(program, db, engine="seminaive")
    par = evaluate_program(program, db, engine="seminaive", parallel=pool2)
    assert par.annotations == serial.annotations
    assert par.iterations == serial.iterations


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_datalog_across_worker_counts(workers, eager):
    semiring = TropicalSemiring()
    program = transitive_closure_program(linear=True)
    db = random_graph_database(semiring, nodes=11, edge_probability=0.3, seed=7)
    serial = evaluate_program(program, db, engine="seminaive")
    with ParallelExecutor(workers, start_method="fork") as executor:
        par = evaluate_program(program, db, engine="seminaive", parallel=executor)
    assert par.annotations == serial.annotations


# -- incremental maintenance -----------------------------------------------------
@pytest.mark.parametrize("semiring", SEMIRINGS, ids=IDS)
def test_incremental_initial_fixpoint_and_insert(semiring, eager, pool2):
    """A parallel initial fixpoint maintains identically to a serial one."""
    program = transitive_closure_program(linear=True)
    serial = IncrementalDatalog(
        program, chain_graph_database(semiring, length=12, seed=9)
    )
    par = IncrementalDatalog(
        program,
        chain_graph_database(semiring, length=12, seed=9),
        parallel=pool2,
    )
    assert serial.result.annotations == par.result.annotations
    # A forward shortcut edge keeps the graph acyclic (finite provenance for
    # the non-idempotent semirings) while rewriting many closure annotations.
    rng = random.Random(99)
    update = [(("n0", "n7"), random_annotation(semiring, rng, 101))]
    serial.insert("R", update)
    par.insert("R", update)
    assert serial.result.annotations == par.result.annotations
    assert serial.relation("Q").equal_to(par.relation("Q"))
