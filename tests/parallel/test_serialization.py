"""Pickle round-trip safety for everything that crosses a process boundary.

The parallel executor ships tuples, row stores, K-relations, semirings and
their annotation values between processes; this file is the regression net
for the serialization sweep: every carrier round-trips by value, hash-consed
circuit nodes re-intern on unpickle (identity is their equality!), and the
two deliberately unshippable things -- opaque predicate closures -- fail
with a clear :class:`~repro.errors.SerializationError` instead of a cryptic
pickling backtrace.  The pool tests at the bottom run real ``fork`` and
``spawn`` workers, because ``spawn`` re-imports everything and is where
naive ``__reduce__`` implementations break.
"""

from __future__ import annotations

import pickle

import pytest

from repro.circuits import CircuitSemiring
from repro.circuits.nodes import const, prod_node, sum_node, var
from repro.errors import SerializationError
from repro.obs.semiring import InstrumentedSemiring
from repro.relations.database import Database
from repro.relations.krelation import KRelation
from repro.relations.schema import Schema
from repro.relations.storage import ColumnarRowStore, DictRowStore
from repro.relations.tuples import Tup
from repro.semirings import (
    BooleanSemiring,
    CompletedNaturalsSemiring,
    FuzzySemiring,
    IntegerPolynomialRing,
    IntegerRing,
    NaturalsSemiring,
    PosBoolSemiring,
    ProvenancePolynomialSemiring,
    TropicalSemiring,
    ViterbiSemiring,
    WhyProvenanceSemiring,
)


def roundtrip(value):
    return pickle.loads(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


def test_tup_roundtrips_by_value():
    tup = Tup({"b": 2, "a": "x", "c": (1, 2)})
    clone = roundtrip(tup)
    assert clone == tup
    assert hash(clone) == hash(tup)
    assert clone["a"] == "x" and clone["b"] == 2


@pytest.mark.parametrize("kind", ["row", "columnar"])
def test_row_stores_roundtrip(kind):
    from repro.relations.storage import make_store

    store = make_store(kind, ("a", "b"))
    tups = [Tup({"a": i, "b": -i}) for i in range(5)]
    for i, tup in enumerate(tups):
        store.set(tup, i + 1)
    clone = roundtrip(store)
    assert isinstance(clone, (DictRowStore, ColumnarRowStore))
    assert dict(clone.items()) == dict(store.items())
    # The clone stays usable: inserts, lookups and removals work after the
    # trip (the columnar store must rebuild its position index).
    extra = Tup({"a": 99, "b": -99})
    clone.set(extra, 7)
    assert clone.get(extra) == 7
    assert clone.discard(tups[0])
    assert len(clone) == len(store)


@pytest.mark.parametrize("storage", ["row", "columnar"])
def test_krelation_roundtrips(storage):
    semiring = NaturalsSemiring()
    relation = KRelation(semiring, Schema(["a", "b"]), storage=storage)
    for i in range(6):
        relation.add({"a": i, "b": i % 2}, i + 1)
    clone = roundtrip(relation)
    assert clone.equal_to(relation)
    assert clone.storage == storage


SEMIRING_SAMPLES = [
    (BooleanSemiring(), [True, False]),
    (NaturalsSemiring(), [0, 3, 1 << 70]),
    (CompletedNaturalsSemiring(), None),
    (IntegerRing(), [-4, 0, 9]),
    (TropicalSemiring(), [0.0, 2.5, float("inf")]),
    (FuzzySemiring(), [0.0, 0.25, 1.0]),
    (ViterbiSemiring(), [0.0, 0.5, 1.0]),
    (PosBoolSemiring(), None),
    (WhyProvenanceSemiring(), None),
    (ProvenancePolynomialSemiring(), None),
    (IntegerPolynomialRing(), None),
]


@pytest.mark.parametrize(
    "semiring,samples", SEMIRING_SAMPLES, ids=lambda s: getattr(s, "name", "")
)
def test_registry_semirings_and_values_roundtrip(semiring, samples):
    clone = roundtrip(semiring)
    assert clone.name == semiring.name
    if samples is None:
        # Structured carriers: build values through the semiring itself.
        x = semiring.coerce(semiring.one())
        samples = [semiring.zero(), x, semiring.add(x, x), semiring.mul(x, x)]
    for value in samples:
        assert clone.coerce(roundtrip(value)) == value
    # The clone computes: a + a * 1 in the clone equals it in the original.
    a = samples[-1]
    assert clone.add(a, clone.mul(a, clone.one())) == semiring.add(
        a, semiring.mul(a, semiring.one())
    )


def test_circuit_nodes_reintern_on_unpickle():
    x, y = var("x"), var("y")
    node = sum_node(prod_node(x, y), const(3), x)
    clone = roundtrip(node)
    # Hash-consing makes interned identity the equality -- the round-trip
    # must land on the *same* node, not a structural copy.
    assert clone is node
    assert roundtrip(x) is x
    assert roundtrip(const(3)) is const(3)


def test_deep_circuit_pickles_without_recursion_error():
    node = var("x0")
    for i in range(3000):
        node = sum_node(node, var(f"x{i + 1}"))
    clone = roundtrip(node)
    assert clone is node


def test_shared_subcircuits_stay_shared():
    shared = prod_node(var("a"), var("b"))
    root = sum_node(shared, prod_node(shared, var("c")))
    clone = roundtrip(root)
    assert clone is root
    assert clone.children[0] is shared


def test_circuit_semiring_database_roundtrips():
    semiring = CircuitSemiring()
    relation = KRelation(semiring, Schema(["a"]))
    relation.add({"a": 1}, semiring.coerce(var("p")))
    relation.add({"a": 2}, semiring.add(var("p"), var("q")))
    clone = roundtrip(Database(semiring, {"R": relation}))
    assert clone.relation("R").annotation({"a": 2}) is semiring.add(
        var("p"), var("q")
    )


def test_instrumented_semiring_roundtrips():
    instrumented = InstrumentedSemiring(TropicalSemiring())
    instrumented.add(1.0, 2.0)
    clone = roundtrip(instrumented)
    assert clone.name == "Tropical"
    assert clone.add(3.0, 4.0) == 3.0  # still computes min


def module_level_predicate(tup):
    return tup["a"] > 1


def test_opaque_predicate_closure_raises_serialization_error():
    from repro.algebra.predicates import OpaquePredicate

    opaque = OpaquePredicate(lambda tup: tup["a"] > 1)
    with pytest.raises(SerializationError, match="structured predicate"):
        pickle.dumps(opaque)


def test_opaque_predicate_module_function_roundtrips():
    from repro.algebra.predicates import OpaquePredicate

    opaque = OpaquePredicate(module_level_predicate)
    clone = roundtrip(opaque)
    assert clone(Tup({"a": 5})) and not clone(Tup({"a": 0}))


def test_structured_predicates_roundtrip():
    from repro.algebra.predicates import attr_eq, attr_eq_const

    for predicate in (attr_eq("a", "b"), attr_eq_const("a", 3)):
        clone = roundtrip(predicate)
        assert clone(Tup({"a": 3, "b": 3})) == predicate(Tup({"a": 3, "b": 3}))


# -- through a real worker process ----------------------------------------------
def _echo_payload():
    """A payload touching every shipped carrier at once."""
    semiring = TropicalSemiring()
    relation = KRelation(semiring, Schema(["a", "b"]), storage="columnar")
    for i in range(4):
        relation.add({"a": i, "b": i + 1}, float(i))
    circuit = sum_node(prod_node(var("x"), var("y")), const(2))
    return (Tup({"k": 1}), relation, semiring, circuit)


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_payloads_survive_worker_processes(start_method):
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{start_method} unavailable on this platform")
    payload = _echo_payload()
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    context = multiprocessing.get_context(start_method)
    with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
        # The worker unpickles the blob and pickles the result back: one
        # full round-trip through a genuinely separate interpreter.
        tup, relation, semiring, circuit = pool.submit(pickle.loads, blob).result()
    assert tup == payload[0]
    assert relation.equal_to(payload[1])
    assert semiring.name == payload[2].name
    assert circuit is payload[3]  # re-interned into this process's table
