"""Spans at every engine boundary: planner, executor, kernels, datalog, views.

Each test runs a real workload under ``tracing()`` and asserts that the
expected spans came out with the expected nesting and attributes -- i.e.
that the instrumentation sites wired through the stack actually fire.  A
final test pins the zero-span guarantee: with tracing off, the same
workloads emit nothing.
"""

from repro.algebra.ast import Q
from repro.circuits import CircuitSemiring
from repro.datalog import evaluate_program
from repro.incremental import IncrementalDatalog, MaterializedView, UpdateBatch
from repro.obs import tracing
from repro.obs.metrics import consing
from repro.obs.trace import enabled
from repro.planner import optimize
from repro.semirings import BooleanSemiring, NaturalsSemiring
from repro.workloads import random_graph_database, transitive_closure_program
from repro.workloads.paper_instances import section2_database, section2_query


class TestEngineSpans:
    def test_pipelined_execution_emits_compile_and_execute(self):
        database = section2_database(NaturalsSemiring())
        query = section2_query()
        with tracing() as sink:
            result = query.evaluate(database, optimize=True, executor="pipelined")
        vectorized = sink.find("engine.vectorized")
        if vectorized:
            # Columnar default storage: the whole-column engine ran the
            # plan instead of the row pipeline; it carries the same
            # execution attributes on its own span.
            (execute_span,) = vectorized
        else:
            assert len(sink.find("engine.compile")) == 1
            (execute_span,) = sink.find("engine.execute")
        assert execute_span.attributes["semiring"] == "N"
        assert execute_span.attributes["out_rows"] == len(result)

    def test_view_build_emits_kernel_spans(self):
        # The relation-level kernels back the materialized-view operator
        # tree under the pipelined executor; building a view over the
        # example query runs both joins.
        database = section2_database(NaturalsSemiring())
        with tracing() as sink:
            MaterializedView(section2_query(), database, executor="pipelined")
        joins = sink.find("kernel.join")
        projects = sink.find("kernel.project")
        assert len(joins) == 2  # the example query joins R with itself twice
        for record in joins:
            assert record.attributes["left_rows"] == 3
            assert record.attributes["right_rows"] == 3
            assert record.attributes["out_rows"] == 5
        assert projects  # projections of the two branches
        for record in projects:
            assert record.attributes["in_rows"] >= record.attributes["out_rows"] > 0


class TestPlannerSpans:
    def test_optimize_emits_rewrite_and_reorder(self):
        database = section2_database(NaturalsSemiring())
        with tracing() as sink:
            optimize(section2_query(), database)
        (rewrite,) = sink.find("planner.rewrite")
        assert rewrite.attributes["rules"] > 0  # pushdowns fire on this query
        assert len(sink.find("planner.reorder")) == 1


class TestDatalogSpans:
    def test_seminaive_rounds_are_spanned(self):
        database = random_graph_database(
            BooleanSemiring(), nodes=8, edge_probability=0.35, seed=3
        )
        program = transitive_closure_program()
        with tracing() as sink:
            result = evaluate_program(program, database, engine="seminaive")
        (seed,) = sink.find("datalog.seed")
        rounds = sink.find("datalog.round")
        assert seed.attributes["mode"] == "annotate"
        assert seed.attributes["delta_rows"] > 0
        # Seed counts as round 1; the drain rounds carry increasing numbers
        # and per-round delta sizes.
        assert [r.attributes["round"] for r in rounds] == list(
            range(2, len(rounds) + 2)
        )
        assert 1 + len(rounds) == result.iterations
        assert all(r.attributes["delta_rows"] > 0 for r in rounds[:-1])


class TestViewSpans:
    def test_materialized_view_build_and_apply(self):
        database = section2_database(NaturalsSemiring())
        view_query = Q.relation("R").project("a", "c")
        with tracing() as sink:
            view = MaterializedView(view_query, database)
            view.apply(UpdateBatch(insertions={"R": [("x", "y", "z")]}))
        (build,) = sink.find("view.build")
        (apply_span,) = sink.find("view.apply")
        assert build.attributes["rows"] == 3
        assert apply_span.attributes["mode"] == "incremental"
        assert apply_span.attributes["changed"] == 1
        assert ("x", "z") in {(t["a"], t["c"]) for t in view.relation}

    def test_incremental_datalog_insert(self):
        database = random_graph_database(
            BooleanSemiring(), nodes=6, edge_probability=0.3, seed=7
        )
        maintained = IncrementalDatalog(transitive_closure_program(), database)
        with tracing() as sink:
            maintained.insert("R", [("n0", "n5")])
        (record,) = sink.find("incremental.insert")
        assert record.attributes["predicate"] == "R"
        assert record.attributes["updates"] == 1
        assert record.attributes["rounds"] >= 1


class TestConsingMetrics:
    def test_tracing_scope_counts_circuit_consing(self):
        semiring = CircuitSemiring()
        p, r = semiring.coerce("p"), semiring.coerce("r")
        with tracing():
            expr = semiring.add(semiring.mul(p, r), semiring.one())
            first = consing.snapshot()
            # Rebuilding the same expression (while the first is alive --
            # the intern table holds nodes weakly) is served entirely from
            # the table: only hits move, and the same node comes back.
            rebuilt = semiring.add(semiring.mul(p, r), semiring.one())
            assert rebuilt is expr
            assert consing.misses == first["misses"]
            assert consing.hits > first["hits"]
            assert 0.0 < consing.hit_rate <= 1.0

    def test_circuit_query_evaluation_shares_nodes(self):
        database = section2_database(CircuitSemiring())
        with tracing():
            section2_query().evaluate(database)
            snapshot = consing.snapshot()
        assert snapshot["hits"] + snapshot["misses"] > 0
        assert not consing.enabled  # scope exit restored the gate


class TestZeroSpanWhenDisabled:
    def test_workloads_emit_nothing_with_tracing_off(self):
        from repro.obs.trace import _STATE

        database = section2_database(NaturalsSemiring())
        probe_sink_records = []

        class Probe:
            def emit(self, record):
                probe_sink_records.append(record)

        # Attach a sink but leave tracing disabled: nothing may be emitted.
        _STATE.sinks.append(Probe())
        assert not enabled()
        section2_query().evaluate(database, optimize=True, executor="pipelined")
        evaluate_program(
            transitive_closure_program(),
            random_graph_database(
                BooleanSemiring(), nodes=6, edge_probability=0.3, seed=3
            ),
            engine="seminaive",
        )
        assert probe_sink_records == []
