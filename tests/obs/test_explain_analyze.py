"""EXPLAIN ANALYZE: golden rendering, cross-checked actuals, API surface.

The golden test pins the full ``render(timings=False)`` output on the
paper's running example (Example 2.1 / Figure 1) over ``N[X]`` -- physical
tree shape, per-node actual rows, hash-join build/probe sizes, and the
semiring-op attribution.  The cross-check tests re-derive those numbers
independently: per-node ``times`` must sum to the global total minus the
breaker's share, and the reported result must be annotation-identical to an
ordinary (unobserved) evaluation.
"""

import json
import pathlib
import re

import pytest

from repro.algebra.ast import Q, QueryError
from repro.obs import explain_analyze, tracing
from repro.obs.explain import ExplainAnalyzeReport
from repro.semirings import NaturalsSemiring, ProvenancePolynomialSemiring
from repro.workloads.paper_instances import section2_database, section2_query

GOLDEN = pathlib.Path(__file__).with_name("golden_explain_analyze.txt")


def _report(semiring=None):
    semiring = semiring if semiring is not None else ProvenancePolynomialSemiring()
    return explain_analyze(section2_query(), section2_database(semiring))


class TestGolden:
    def test_render_matches_golden(self):
        rendered = _report().render(timings=False) + "\n"
        assert rendered == GOLDEN.read_text(encoding="utf-8")

    def test_render_is_deterministic_across_runs(self):
        assert _report().render(timings=False) == _report().render(timings=False)

    def test_timings_only_add_time_fields(self):
        report = _report()
        with_timings = report.render(timings=True)
        without = report.render(timings=False)
        assert "time=" in with_timings and "wall=" in with_timings
        assert "time=" not in without and "wall=" not in without
        stripped = re.sub(r" (?:time|wall)=[0-9.]+ms", "", with_timings)
        assert stripped == without


class TestCrossChecks:
    def test_result_is_annotation_identical_to_plain_evaluation(self):
        semiring = ProvenancePolynomialSemiring()
        database = section2_database(semiring)
        query = section2_query()
        report = explain_analyze(query, database)
        assert report.result.equal_to(query.evaluate(database))
        assert report.result.equal_to(query.evaluate(database, optimize=True))
        # And the handed-back relation is over the plain semiring.
        assert report.result.semiring is database.semiring

    def test_per_node_times_sum_to_totals(self):
        report = _report()
        per_node_times = sum(stats.ops.times for _, stats, _ in report.nodes())
        assert per_node_times + report.breaker_ops["times"] == report.totals["times"]

    def test_breaker_accounts_for_all_plus_and_is_zero(self):
        # The pipelined engine has one pipeline breaker: every + and every
        # support check happens in the final batched accumulation.
        report = _report()
        assert report.breaker_ops["plus"] == report.totals["plus"]
        assert report.breaker_ops["is_zero"] == report.totals["is_zero"]
        assert all(stats.ops.plus == 0 for _, stats, _ in report.nodes())

    def test_actual_rows_against_hand_computed_values(self):
        # Example 2.1: q joins R with itself twice and unions the branches.
        # Both join branches emit 5 rows, the union streams all 10, and the
        # breaker collapses them onto the 5 distinct result tuples.
        report = _report()
        rows_by_operator = [
            (row["operator"], row["rows"]) for row in report.table()
        ]
        assert rows_by_operator == [
            ("UnionAll", 10),
            ("HashJoin on (b) build=left", 5),
            ("Scan R", 3),
            ("Scan R", 3),
            ("HashJoin on (c) build=left", 5),
            ("Scan R", 3),
            ("Scan R", 3),
        ]
        assert len(report.result) == 5

    def test_join_build_probe_sizes(self):
        report = _report()
        joins = [row for row in report.table() if row["operator"].startswith("HashJoin")]
        assert len(joins) == 2
        for row in joins:
            assert row["build_size"] == 3 and row["probe_size"] == 3

    def test_table_is_json_serializable(self):
        payload = json.dumps(_report().table())
        assert "UnionAll" in payload

    def test_wall_time_positive_and_node_inclusive(self):
        report = _report()
        root_stats = report.observer.stats(report.root)
        assert report.wall > 0.0
        assert 0.0 < root_stats.wall <= report.wall


class TestApiSurface:
    def test_query_explain_analyze_method(self):
        database = section2_database(NaturalsSemiring())
        report = section2_query().explain_analyze(database)
        assert isinstance(report, ExplainAnalyzeReport)
        assert report.totals["times"] > 0

    def test_query_explain_dispatches_on_analyze(self):
        database = section2_database(NaturalsSemiring())
        query = section2_query()
        logical = query.explain(database)
        analyzed = query.explain(database, analyze=True)
        assert not isinstance(logical, ExplainAnalyzeReport)
        assert isinstance(analyzed, ExplainAnalyzeReport)

    def test_explain_analyze_requires_database(self):
        with pytest.raises(QueryError):
            section2_query().explain(analyze=True)

    def test_unoptimized_report_has_no_logical_header(self):
        database = section2_database(NaturalsSemiring())
        report = explain_analyze(section2_query(), database, optimize=False)
        rendered = report.render(timings=False)
        assert report.optimization is None
        assert "logical plan:" not in rendered
        assert report.result.equal_to(section2_query().evaluate(database))

    def test_selection_filters_render_deterministically(self):
        database = section2_database(NaturalsSemiring())
        query = (
            Q.relation("R")
            .select(lambda row: row["a"] != "d")
            .project("a", "c")
        )
        report = explain_analyze(query, database)
        rendered = report.render(timings=False)
        assert "filter:" in rendered
        assert "0x" not in rendered  # no memory addresses anywhere
        assert report.result.equal_to(query.evaluate(database))

    def test_emits_span_when_tracing(self):
        database = section2_database(NaturalsSemiring())
        with tracing() as sink:
            explain_analyze(section2_query(), database)
        (record,) = sink.find("explain.analyze")
        assert record.attributes["semiring"] == "N"
