"""Tracer-state hygiene: every test starts and ends with a pristine tracer."""

import pytest

from repro.obs import trace
from repro.obs.metrics import consing


@pytest.fixture(autouse=True)
def _pristine_tracer():
    """Snapshot and restore the module-level tracer state around each test.

    ``disable()`` deliberately keeps sinks attached (so a paused trace can
    resume), which would otherwise leak sinks between tests that call
    ``enable`` directly instead of using the ``tracing()`` scope.
    """
    prev_enabled = trace._STATE.enabled
    prev_sinks = list(trace._STATE.sinks)
    prev_consing = consing.enabled
    trace._STATE.enabled = False
    trace._STATE.sinks = []
    consing.enabled = False
    consing.reset()
    yield
    trace._STATE.enabled = prev_enabled
    trace._STATE.sinks = prev_sinks
    trace._STATE.stack = []
    consing.enabled = prev_consing
