"""Span tracer unit tests: nesting, sinks, the no-op fast path, env setup."""

import json

import pytest

from repro.obs import tracing
from repro.obs.metrics import consing
from repro.obs.sinks import InMemorySink, JsonlSink, StderrSink
from repro.obs.trace import (
    NOOP_SPAN,
    SpanRecord,
    _enable_from_environment,
    active_sinks,
    add_sink,
    disable,
    enable,
    enabled,
    remove_sink,
    span,
)


class TestNoopFastPath:
    def test_disabled_span_is_the_shared_noop(self):
        assert not enabled()
        assert span("anything") is NOOP_SPAN
        assert span("other", attr=1) is NOOP_SPAN

    def test_noop_span_is_inert(self):
        with span("nothing", a=1) as sp:
            sp.set(b=2)  # must not raise, must not record
        assert sp is NOOP_SPAN

    def test_enable_disable_roundtrip(self):
        sink = InMemorySink()
        enable(sink)
        try:
            assert enabled()
            assert span("live") is not NOOP_SPAN
        finally:
            disable()
        assert not enabled()
        assert span("dead") is NOOP_SPAN


class TestNesting:
    def test_parent_and_depth(self):
        with tracing() as sink:
            with span("outer"):
                with span("middle"):
                    with span("inner"):
                        pass
        # Children finish (and are emitted) before parents: emission order is
        # inner-first, so sort by depth to name them.
        records = sorted(sink.records, key=lambda r: r.depth)
        outer, middle, inner = records
        assert [r.name for r in records] == ["outer", "middle", "inner"]
        assert outer.parent_id is None and outer.depth == 0
        assert middle.parent_id == outer.span_id and middle.depth == 1
        assert inner.parent_id == middle.span_id and inner.depth == 2

    def test_siblings_share_parent(self):
        with tracing() as sink:
            with span("parent"):
                with span("first"):
                    pass
                with span("second"):
                    pass
        by_name = {r.name: r for r in sink.records}
        parent = by_name["parent"]
        assert by_name["first"].parent_id == parent.span_id
        assert by_name["second"].parent_id == parent.span_id
        assert by_name["first"].span_id != by_name["second"].span_id

    def test_attributes_and_set(self):
        with tracing() as sink:
            with span("op", rows=3) as sp:
                sp.set(out_rows=7)
        (record,) = sink.records
        assert record.attributes == {"rows": 3, "out_rows": 7}
        assert record.duration >= 0.0

    def test_stack_unwinds_on_exception(self):
        with tracing() as sink:
            with pytest.raises(ValueError):
                with span("outer"):
                    with span("failing"):
                        raise ValueError("boom")
            with span("after"):
                pass
        by_name = {r.name: r for r in sink.records}
        # Both spans closed despite the exception, and the stack is clean:
        # "after" is a root span again.
        assert set(by_name) == {"outer", "failing", "after"}
        assert by_name["failing"].attributes.get("error") == "ValueError"
        assert by_name["after"].parent_id is None and by_name["after"].depth == 0


class TestTracingScope:
    def test_default_sink_is_fresh_in_memory(self):
        with tracing() as sink:
            assert isinstance(sink, InMemorySink)
            with span("x"):
                pass
        assert len(sink) == 1
        assert not enabled()

    def test_restores_prior_state(self):
        outer_sink = InMemorySink()
        enable(outer_sink)
        try:
            with tracing() as inner_sink:
                with span("inner-only"):
                    pass
            # Outer tracing state restored, inner spans stayed in inner sink.
            assert enabled()
            assert active_sinks() == (outer_sink,)
            assert inner_sink.names() == ["inner-only"]
            assert len(outer_sink) == 0
        finally:
            disable()

    def test_find_and_names_helpers(self):
        with tracing() as sink:
            with span("a"):
                pass
            with span("b"):
                pass
            with span("a"):
                pass
        assert sink.names() == ["a", "b", "a"]
        assert len(sink.find("a")) == 2
        sink.clear()
        assert len(sink) == 0


class TestSinks:
    def test_add_remove_sink(self):
        first, second = InMemorySink(), InMemorySink()
        enable(first)
        try:
            add_sink(second)
            with span("both"):
                pass
            remove_sink(second)
            with span("one"):
                pass
        finally:
            disable()
        assert first.names() == ["both", "one"]
        assert second.names() == ["both"]

    def test_jsonl_sink_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        enable(sink)
        try:
            with span("outer", semiring="N"):
                with span("inner"):
                    pass
        finally:
            disable()
            sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        by_name = {r["name"]: r for r in records}
        assert by_name["outer"]["attributes"] == {"semiring": "N"}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]

    def test_stderr_sink_indents_by_depth(self, capsys):
        enable(StderrSink())
        try:
            with span("outer"):
                with span("inner"):
                    pass
        finally:
            disable()
        err = capsys.readouterr().err
        lines = [line for line in err.splitlines() if line.strip()]
        assert any(line.startswith("  ") and "inner" in line for line in lines)
        assert any(not line.startswith(" ") and "outer" in line for line in lines)


class TestMetricsSync:
    def test_consing_stats_follow_tracing(self):
        assert not consing.enabled
        with tracing():
            assert consing.enabled
        assert not consing.enabled


class TestEnvironmentSetup:
    def test_repro_trace_jsonl(self, tmp_path, monkeypatch):
        path = tmp_path / "env-trace.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        _enable_from_environment()
        try:
            assert enabled()
            (sink,) = active_sinks()
            assert isinstance(sink, JsonlSink)
            with span("from-env"):
                pass
            sink.close()
        finally:
            disable()
        assert "from-env" in path.read_text()

    def test_repro_trace_stderr(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "stderr")
        _enable_from_environment()
        try:
            (sink,) = active_sinks()
            assert isinstance(sink, StderrSink)
        finally:
            disable()

    def test_repro_trace_unset_is_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        _enable_from_environment()
        assert not enabled()


def test_span_record_to_dict_is_json_ready():
    record = SpanRecord(
        name="n",
        start=0.0,
        duration=0.5,
        depth=0,
        span_id=1,
        parent_id=None,
        attributes={"k": "v"},
    )
    payload = json.loads(json.dumps(record.to_dict()))
    assert payload["name"] == "n"
    assert payload["attributes"] == {"k": "v"}
