"""Differential tests: the instrumented wrapper is annotation-identical.

``InstrumentedSemiring`` must be a perfect impostor -- every result equal to
the delegate's, every structural flag mirrored -- with the single addition
that ``add``/``mul``/``is_zero`` bump an :class:`OpCounter`.  These tests
run the wrapper against every shipped semiring (the ``any_semiring``
fixture spans N, B, N∞, Tropical, Fuzzy, Viterbi, PosBool, Why, Witness,
N[X], N∞[X], Z and Z[X]) plus provenance circuits, element-wise over the
law-checking sample pools and end-to-end over the paper's running example.
"""

from tests.conftest import sample_elements
from repro.circuits import CircuitSemiring
from repro.obs import InstrumentedSemiring, OpCounter, instrument
from repro.semirings import IntegerRing, NaturalsSemiring
from repro.workloads.paper_instances import section2_database, section2_query

STRUCTURAL_FLAGS = [
    "name",
    "idempotent_add",
    "idempotent_mul",
    "is_omega_continuous",
    "is_distributive_lattice",
    "has_top",
    "naturally_ordered",
    "has_negation",
]


class TestElementwiseDifferential:
    def test_add_mul_match_delegate(self, any_semiring):
        wrapped = instrument(any_semiring)
        pool = sample_elements(any_semiring)
        for a in pool:
            for b in pool:
                assert wrapped.add(a, b) == any_semiring.add(a, b)
                assert wrapped.mul(a, b) == any_semiring.mul(a, b)

    def test_is_zero_is_one_match_delegate(self, any_semiring):
        wrapped = instrument(any_semiring)
        for a in sample_elements(any_semiring):
            assert wrapped.is_zero(a) == any_semiring.is_zero(a)
            assert wrapped.is_one(a) == any_semiring.is_one(a)

    def test_constants_match_delegate(self, any_semiring):
        wrapped = instrument(any_semiring)
        assert wrapped.zero() == any_semiring.zero()
        assert wrapped.one() == any_semiring.one()
        assert wrapped.from_int(3) == any_semiring.from_int(3)

    def test_structural_flags_mirrored(self, any_semiring):
        wrapped = instrument(any_semiring)
        for flag in STRUCTURAL_FLAGS:
            assert getattr(wrapped, flag) == getattr(any_semiring, flag), flag

    def test_sum_product_match_delegate(self, any_semiring):
        wrapped = instrument(any_semiring)
        pool = sample_elements(any_semiring)
        assert wrapped.sum(pool) == any_semiring.sum(pool)
        assert wrapped.product(pool[:3]) == any_semiring.product(pool[:3])


class TestCircuits:
    def test_circuit_ops_match_delegate(self):
        delegate = CircuitSemiring()
        wrapped = instrument(delegate)
        p, r = delegate.coerce("p"), delegate.coerce("r")
        # Hash-consing makes structural equality identity equality, so the
        # wrapper must return the *same interned node* as the delegate.
        assert wrapped.add(p, r) is delegate.add(p, r)
        assert wrapped.mul(p, r) is delegate.mul(p, r)
        assert wrapped.is_zero(p) == delegate.is_zero(p)
        assert wrapped.ops.times == 1 and wrapped.ops.plus == 1


class TestCounting:
    def test_counts_every_hot_call(self):
        semiring = NaturalsSemiring()
        wrapped = instrument(semiring)
        wrapped.add(1, 2)
        wrapped.add(2, 3)
        wrapped.mul(2, 3)
        wrapped.is_zero(0)
        assert wrapped.ops.snapshot() == {"plus": 2, "times": 1, "is_zero": 1}
        assert wrapped.ops.total == 4

    def test_sum_counts_per_element(self):
        wrapped = instrument(NaturalsSemiring())
        wrapped.sum([1, 2, 3])
        # The base fold starts from zero(): one add per element.
        assert wrapped.ops.plus == 3

    def test_subtract_routes_through_counted_add(self):
        wrapped = instrument(IntegerRing())
        assert wrapped.subtract(5, 3) == 2
        assert wrapped.ops.plus == 1

    def test_shared_counter(self):
        ops = OpCounter()
        first = instrument(NaturalsSemiring(), ops)
        second = instrument(IntegerRing(), ops)
        first.add(1, 1)
        second.mul(2, 2)
        assert ops.plus == 1 and ops.times == 1

    def test_counter_reset_and_delta(self):
        ops = OpCounter()
        wrapped = instrument(NaturalsSemiring(), ops)
        wrapped.add(1, 1)
        before = ops.snapshot()
        wrapped.add(1, 1)
        wrapped.mul(1, 1)
        assert ops.delta(before) == {"plus": 1, "times": 1, "is_zero": 0}
        ops.reset()
        assert ops.total == 0

    def test_rewrapping_unwraps(self):
        inner = instrument(NaturalsSemiring())
        outer = InstrumentedSemiring(inner)
        assert outer.delegate is inner.delegate
        outer.add(1, 1)
        assert inner.ops.plus == 0  # not double-counted


class TestEndToEnd:
    def test_paper_example_annotations_identical(self, any_semiring):
        query = section2_query()
        plain = query.evaluate(section2_database(any_semiring))
        wrapped = instrument(any_semiring)
        instrumented = query.evaluate(section2_database(wrapped))
        assert plain.equal_to(instrumented)
        assert wrapped.ops.total > 0  # evaluation actually went through it

    def test_paper_example_over_circuits(self):
        query = section2_query()
        delegate = CircuitSemiring()
        plain = query.evaluate(section2_database(delegate))
        instrumented = query.evaluate(section2_database(instrument(delegate)))
        assert plain.equal_to(instrumented)

    def test_pipelined_engine_accepts_instrumented_database(self, any_semiring):
        query = section2_query()
        plain = query.evaluate(section2_database(any_semiring), optimize=True)
        instrumented = query.evaluate(
            section2_database(instrument(any_semiring)), optimize=True
        )
        assert plain.equal_to(instrumented)
