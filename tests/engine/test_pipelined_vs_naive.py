"""Differential harness: pipelined physical execution vs operator-at-a-time.

The pipelined engine (:mod:`repro.engine`) fuses selections, projections and
renames into scans and join probe loops, picks hash-join build sides by
estimated cardinality, and accumulates duplicate-tuple annotation
contributions batched.  Every one of those moves is justified by
associativity, commutativity and distributivity alone, so on *any* plan --
optimized or as written -- and over *any* commutative semiring the result
must equal the naive executor's, annotation for annotation.  This suite
drives that equivalence with hypothesis-generated random query trees and
databases over the registry semirings of the ISSUE: N, B, Tropical,
PosBool(X), Z, N[X], and provenance circuits.

Every equivalence is additionally driven on **both storage backends**: the
``storage`` parametrization pins the pipelined side to the row dict store
or to the columnar store, where (numpy permitting) the whole-column
vectorized kernels take over for the supported semirings and fall back
row-at-a-time for the rest -- either way the annotations must not move.

Circuits are compared by the polynomial they denote: the pipelined engine
sums contributions in a different association order, which yields
semantically equal but structurally distinct DAGs (Proposition 4.2).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from strategies import (
    BASE_SCHEMAS,
    DOMAIN,
    PLANNER_SEMIRING_NAMES,
    annotation_for,
    ra_queries,
    view_databases,
)

from repro.circuits import to_polynomial
from repro.engine import join_relations, project_relation
from repro.errors import QueryError
from repro.incremental import MaterializedView, UpdateBatch, apply_batch_to_database
from repro.semirings import get_semiring

DIFFERENTIAL_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Both physical backends of the pipelined side.
STORAGE_BACKENDS = ("row", "columnar")


def _comparable(semiring, value):
    if semiring.name == "Circ[X]":
        return to_polynomial(value)
    return value


def _assert_same_relation(semiring, expected, actual, context: str):
    assert expected.schema.attribute_set == actual.schema.attribute_set, context
    for tup in set(expected.support) | set(actual.support):
        left = expected.annotation(tup)
        right = actual.annotation(tup)
        assert _comparable(semiring, left) == _comparable(semiring, right), (
            f"{context}\n{tup}: naive={semiring.format_value(left)} "
            f"pipelined={semiring.format_value(right)}"
        )


@pytest.mark.parametrize("storage", STORAGE_BACKENDS)
@pytest.mark.parametrize("semiring_name", PLANNER_SEMIRING_NAMES)
@given(data=st.data())
@DIFFERENTIAL_SETTINGS
def test_pipelined_executor_agrees_annotation_for_annotation(semiring_name, storage, data):
    """executor="pipelined" equals executor="naive" on random plans."""
    semiring = get_semiring(semiring_name)
    query, _schema = data.draw(ra_queries(), label="query")
    database = data.draw(view_databases(semiring), label="database")
    baseline = query.evaluate(database)
    result = query.evaluate(database, executor="pipelined", storage=storage)
    result.check_consistency()
    _assert_same_relation(
        semiring,
        baseline,
        result,
        f"as-written plan over {semiring.name} on {storage} storage: {query}",
    )


@pytest.mark.parametrize("storage", STORAGE_BACKENDS)
@pytest.mark.parametrize("semiring_name", PLANNER_SEMIRING_NAMES)
@given(data=st.data())
@DIFFERENTIAL_SETTINGS
def test_pipelined_executor_agrees_on_optimized_plans(semiring_name, storage, data):
    """The full stack -- planner then physical engine -- stays equivalent."""
    semiring = get_semiring(semiring_name)
    query, _schema = data.draw(ra_queries(), label="query")
    database = data.draw(view_databases(semiring), label="database")
    baseline = query.evaluate(database)
    _assert_same_relation(
        semiring,
        baseline,
        query.evaluate(database, optimize=True, executor="pipelined", storage=storage),
        f"optimized plan over {semiring.name} on {storage} storage: {query}",
    )


@pytest.mark.parametrize("storage", STORAGE_BACKENDS)
@pytest.mark.parametrize("semiring_name", PLANNER_SEMIRING_NAMES)
@given(data=st.data())
@DIFFERENTIAL_SETTINGS
def test_relation_level_kernels_match_operators(semiring_name, storage, data):
    """The shared join/projection kernels equal their logical counterparts.

    On columnar inputs the kernels route through the vectorized whole-column
    implementations for the semirings that support them; the result must
    stay identical either way.
    """
    from repro.algebra import operators

    semiring = get_semiring(semiring_name)
    database = data.draw(view_databases(semiring), label="database")
    left = database.relation("R").with_storage(storage)
    right = database.relation("S").with_storage(storage)
    joined = join_relations(left, right)
    joined.check_consistency()
    _assert_same_relation(
        semiring,
        operators.join(left, right),
        joined,
        f"join kernel over {semiring.name} on {storage} storage",
    )
    _assert_same_relation(
        semiring,
        operators.project(left, ["a"]),
        project_relation(left, ["a"]),
        f"projection kernel over {semiring.name} on {storage} storage",
    )


@pytest.mark.parametrize("storage", STORAGE_BACKENDS)
@pytest.mark.parametrize("semiring_name", ("bag", "bool", "tropical", "posbool", "z"))
@given(data=st.data())
@settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_pipelined_materialized_views_maintain_identically(semiring_name, storage, data):
    """A view maintained through the engine kernels stays equal to
    recomputation of the original query under random insertion streams."""
    semiring = get_semiring(semiring_name)
    query, _schema = data.draw(ra_queries(), label="query")
    database = data.draw(view_databases(semiring), label="database")
    shadow = database.copy()
    view = MaterializedView(
        query, database, optimize=True, executor="pipelined", storage=storage
    )
    _assert_same_relation(
        semiring, query.evaluate(shadow), view.relation, f"initial view: {query}"
    )
    index = 9000
    for _ in range(data.draw(st.integers(min_value=1, max_value=3), label="batches")):
        insertions = {}
        for name in sorted(BASE_SCHEMAS):
            attributes = BASE_SCHEMAS[name]
            entries = []
            for _ in range(data.draw(st.integers(min_value=0, max_value=2))):
                values = tuple(
                    data.draw(st.sampled_from(DOMAIN)) for _ in attributes
                )
                index += 1
                entries.append((values, annotation_for(semiring, index, data.draw)))
            if entries:
                insertions[name] = entries
        batch = UpdateBatch(insertions=insertions)
        view.apply(batch)
        apply_batch_to_database(shadow, batch)
        _assert_same_relation(
            semiring,
            query.evaluate(shadow),
            view.relation,
            f"maintained pipelined view: {query}\nplan: {view.plan}",
        )


def test_unknown_executor_is_rejected():
    from repro import Database, NaturalsSemiring, Q

    database = Database(NaturalsSemiring())
    database.create("R", ["a", "b"], [("1", "2")])
    with pytest.raises(QueryError):
        Q.relation("R").evaluate(database, executor="vectorized")
    with pytest.raises(QueryError):
        MaterializedView(Q.relation("R"), database, executor="vectorized")
