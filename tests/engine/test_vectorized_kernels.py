"""Unit coverage of the whole-column kernels behind the columnar backend.

The differential harnesses prove the vectorized engine *agrees* with the
row engine end-to-end; this file pins down the pieces in isolation --
``ColumnEncoder``'s incremental dictionary encoding, ``fire_linear_join``'s
grouped totals (including deliberate zero totals under a ring), the
numpy-missing degradation, and row/columnar equality of the semi-naive
engine over every vectorizable semiring plus a non-vectorizable control.
"""

from __future__ import annotations

import pytest

from repro.datalog import evaluate_program
from repro.engine import vectorized
from repro.semirings import get_semiring
from repro.workloads import random_graph_database, transitive_closure_program

requires_numpy = pytest.mark.skipif(
    not vectorized.numpy_available(),
    reason="vectorized kernels need a numpy runtime",
)


@requires_numpy
class TestColumnEncoder:
    def test_incremental_extend_matches_one_shot_encoding(self):
        encoder = vectorized.ColumnEncoder()
        encoder.extend(["a", "b", "a"])
        assert len(encoder) == 3
        encoder.extend(["c", "b"])
        column = encoder.column()
        assert list(column.codes) == [0, 1, 0, 2, 1]
        assert list(column.uniques) == ["a", "b", "c"]
        assert list(column.values()) == ["a", "b", "a", "c", "b"]

    def test_column_snapshots_are_stable_across_growth(self):
        encoder = vectorized.ColumnEncoder()
        encoder.extend([1, 2])
        before = encoder.column()
        encoder.extend([3])
        assert list(before.codes) == [0, 1]  # earlier snapshot untouched
        assert list(encoder.column().codes) == [0, 1, 2]

    def test_unhashable_values_raise_out_of_extend(self):
        encoder = vectorized.ColumnEncoder()
        with pytest.raises(TypeError):
            encoder.extend([["not", "hashable"]])


def _encode(values):
    encoder = vectorized.ColumnEncoder()
    encoder.extend(values)
    return encoder.column()


@requires_numpy
class TestFireLinearJoin:
    def _ops(self, name):
        ops = vectorized.vector_ops_for(get_semiring(name))
        assert ops is not None
        return ops

    def test_grouped_totals_match_the_hand_computed_join(self):
        # delta(a, b) ⋈ stored(b, c) grouped on (a, c) over N: the classic
        # two-hop shape the semi-naive recipe compiles TC rules into.
        ops = self._ops("bag")
        emit = {}
        fired = vectorized.fire_linear_join(
            ops,
            probe_cols={0: _encode(["x", "x", "y"]), 1: _encode(["m", "n", "m"])},
            probe_ann=ops.to_array([2, 3, 5]),
            build_cols={0: _encode(["m", "n", "m"]), 1: _encode(["p", "p", "q"])},
            build_ann=ops.to_array([7, 11, 13]),
            key=[(1, 0)],
            head=[("p", 0), ("b", 1)],
            emit=emit,
        )
        assert fired
        totals = {tup: values for tup, values in emit.items()}
        # (x,p): x-m(2*7) + x-n(3*11) = 47; (x,q): 2*13 = 26
        # (y,p): 5*7 = 35;              (y,q): 5*13 = 65
        assert {tup: sum(vals) for tup, vals in totals.items()} == {
            ("x", "p"): 47,
            ("x", "q"): 26,
            ("y", "p"): 35,
            ("y", "q"): 65,
        }

    def test_zero_totals_are_emitted_for_merge_delta_to_cancel(self):
        # Under Z two contributions to the same head tuple may cancel; the
        # kernel must emit the exact zero so merge_delta (which owns the
        # stored-zero invariant) can remove the tuple, exactly like the row
        # path's per-derivation accumulation would.
        ops = self._ops("z")
        emit = {}
        assert vectorized.fire_linear_join(
            ops,
            probe_cols={0: _encode(["x", "x"]), 1: _encode(["m", "n"])},
            probe_ann=ops.to_array([1, -1]),
            build_cols={0: _encode(["m", "n"]), 1: _encode(["p", "p"])},
            build_ann=ops.to_array([4, 4]),
            key=[(1, 0)],
            head=[("p", 0), ("b", 1)],
            emit=emit,
        )
        assert [sum(vals) for vals in emit.values()] == [0]

    def test_empty_sides_fire_trivially(self):
        ops = self._ops("bag")
        emit = {}
        assert vectorized.fire_linear_join(
            ops,
            probe_cols={},
            probe_ann=ops.to_array([]),
            build_cols={0: _encode(["m"])},
            build_ann=ops.to_array([1]),
            key=[],
            head=[],
            emit=emit,
        )
        assert emit == {}


#: Semirings whose annotate-mode semi-naive rounds vectorize, plus "nx"
#: (no vector arithmetic -- exercises the per-plan row fallback under the
#: columnar stores) as a control.
SEMINAIVE_NAMES = ("bool", "tropical", "fuzzy", "viterbi", "nx")


@pytest.mark.parametrize("semiring_name", SEMINAIVE_NAMES)
def test_seminaive_row_and_columnar_storage_agree(semiring_name):
    semiring = get_semiring(semiring_name)
    database = random_graph_database(
        semiring, nodes=12, edge_probability=0.25, seed=17
    )
    program = transitive_closure_program()
    kwargs = {"on_divergence": "skip"} if semiring_name == "nx" else {}
    row = evaluate_program(program, database, engine="seminaive", storage="row", **kwargs)
    columnar = evaluate_program(
        program, database, engine="seminaive", storage="columnar", **kwargs
    )
    assert row.annotations == columnar.annotations
    assert row.iterations == columnar.iterations


def test_everything_degrades_gracefully_without_numpy(monkeypatch):
    # CI's plain test matrix has no numpy: the columnar stores must still
    # work, with every vectorized entry point declining instead of crashing.
    monkeypatch.setattr(vectorized, "_np", None)
    assert not vectorized.numpy_available()
    assert vectorized.fire_linear_join(None, {}, None, {}, None, [], [], {}) is False

    from repro import Database, Q
    from repro.semirings import NaturalsSemiring

    database = Database(NaturalsSemiring())
    database.create("E", ["a", "b"], [(("1", "2"), 2), (("2", "3"), 3)])
    assert (
        vectorized.try_execute(Q.relation("E"), database, storage="columnar") is None
    )
    query = (
        Q.relation("E")
        .join(Q.relation("E").rename({"a": "b", "b": "c"}))
        .project("a", "c")
    )
    result = query.evaluate(database, executor="pipelined", storage="columnar")
    assert result.storage == "columnar"
    assert result.annotation(("1", "3")) == 6
    result.check_consistency()

    semiring = get_semiring("tropical")
    graph = random_graph_database(semiring, nodes=8, edge_probability=0.3, seed=5)
    program = transitive_closure_program()
    row = evaluate_program(program, graph, engine="seminaive", storage="row")
    columnar = evaluate_program(program, graph, engine="seminaive", storage="columnar")
    assert row.annotations == columnar.annotations
