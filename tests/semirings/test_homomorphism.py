"""Semiring homomorphisms and Eval_v (Propositions 3.5, 4.2, 6.3)."""

import pytest

from repro.errors import SemiringError
from repro.semirings import (
    BooleanSemiring,
    CompletedNaturalsSemiring,
    NatInf,
    NaturalsSemiring,
    Polynomial,
    PosBoolSemiring,
    SemiringHomomorphism,
    check_homomorphism,
    polynomial_evaluation,
    series_evaluation,
)
from repro.semirings.posbool import BoolExpr


def test_support_homomorphism_n_to_bool():
    """n |-> (n > 0) is a semiring homomorphism N -> B (the 'support' map)."""
    h = SemiringHomomorphism(NaturalsSemiring(), BooleanSemiring(), lambda n: n > 0)
    assert not check_homomorphism(h, [0, 1, 2, 5])


def test_non_homomorphism_detected():
    """n |-> (n > 1) fails h(1) = 1 and additivity."""
    h = SemiringHomomorphism(NaturalsSemiring(), BooleanSemiring(), lambda n: n > 1)
    violations = check_homomorphism(h, [0, 1, 2])
    assert violations


def test_polynomial_evaluation_is_homomorphism():
    bag = NaturalsSemiring()
    eval_v = polynomial_evaluation(bag, {"p": 2, "r": 5, "s": 1})
    sample = [
        Polynomial.parse("2*p^2"),
        Polynomial.parse("r*s"),
        Polynomial.parse("2*r^2 + r*s"),
        Polynomial.var("p"),
    ]
    assert not check_homomorphism(eval_v, sample)
    assert eval_v(Polynomial.parse("2*r^2 + r*s")) == 55


def test_polynomial_evaluation_into_posbool():
    posbool = PosBoolSemiring()
    eval_v = polynomial_evaluation(posbool, {"p": "b1", "r": "b2", "s": "b3"})
    assert eval_v(Polynomial.parse("2*p^2")) == BoolExpr.var("b1")
    assert eval_v(Polynomial.parse("2*s^2 + r*s")) == BoolExpr.var("b3") | (
        BoolExpr.var("b2") & BoolExpr.var("b3")
    )


def test_series_evaluation_requires_omega_continuous_target():
    with pytest.raises(SemiringError):
        series_evaluation(NaturalsSemiring(), {})
    eval_v = series_evaluation(CompletedNaturalsSemiring(), {"s": NatInf(1)})
    from repro.semirings import FormalPowerSeries

    assert eval_v(FormalPowerSeries.var("s")) == NatInf(1)


def test_composition():
    bag = NaturalsSemiring()
    boolean = BooleanSemiring()
    to_bool = SemiringHomomorphism(bag, boolean, lambda n: n > 0, name="support")
    eval_v = polynomial_evaluation(bag, {"p": 2, "r": 0})
    composed = to_bool.compose(eval_v)
    assert composed(Polynomial.parse("p + r")) is True
    assert composed(Polynomial.parse("r")) is False


def test_composition_type_mismatch_raises():
    bag = NaturalsSemiring()
    boolean = BooleanSemiring()
    to_bool = SemiringHomomorphism(bag, boolean, lambda n: n > 0)
    with pytest.raises(SemiringError):
        to_bool.compose(to_bool)
