"""PosBool(B): canonical minimal-DNF conditions (the c-table semiring)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidAnnotationError
from repro.semirings import BoolExpr, PosBoolSemiring


def test_true_false_constants():
    assert BoolExpr.true().is_true
    assert BoolExpr.false().is_false
    assert BoolExpr.of(True) == BoolExpr.true()
    assert BoolExpr.of(False) == BoolExpr.false()


def test_absorption_simplification_figure2():
    """(b1 ∧ b1) ∨ (b1 ∧ b1) simplifies to b1; (b2∧b2) ∨ (b2∧b2) ∨ (b2∧b3) to b2."""
    b1, b2, b3 = BoolExpr.var("b1"), BoolExpr.var("b2"), BoolExpr.var("b3")
    assert (b1 & b1) | (b1 & b1) == b1
    assert (b2 & b2) | (b2 & b2) | (b2 & b3) == b2
    assert (b3 & b3) | (b3 & b3) | (b2 & b3) == b3


def test_and_or_laws():
    a, b, c = BoolExpr.var("a"), BoolExpr.var("b"), BoolExpr.var("c")
    assert (a | b) & c == (a & c) | (b & c)
    assert a & (a | b) == a
    assert a | (a & b) == a
    assert (a & BoolExpr.false()).is_false
    assert a | BoolExpr.false() == a
    assert a & BoolExpr.true() == a
    assert (a | BoolExpr.true()).is_true


def test_semantic_equality_is_structural_equality():
    a, b = BoolExpr.var("a"), BoolExpr.var("b")
    left = (a & b) | a
    right = a
    assert left == right
    assert hash(left) == hash(right)


def test_evaluate_under_assignment():
    expr = (BoolExpr.var("a") & BoolExpr.var("b")) | BoolExpr.var("c")
    assert expr.evaluate({"a": True, "b": True, "c": False})
    assert expr.evaluate({"c": True})
    assert not expr.evaluate({"a": True})


def test_implies():
    a, b = BoolExpr.var("a"), BoolExpr.var("b")
    assert (a & b).implies(a)
    assert not a.implies(a & b)
    assert BoolExpr.false().implies(a)
    assert a.implies(BoolExpr.true())


def test_str_rendering():
    a, b = BoolExpr.var("a"), BoolExpr.var("b")
    assert str(a) == "a"
    assert str(BoolExpr.true()) == "true"
    assert str(BoolExpr.false()) == "false"
    assert "∧" in str(a & b)


def test_semiring_interface():
    semiring = PosBoolSemiring()
    a = BoolExpr.var("a")
    assert semiring.add(a, semiring.zero()) == a
    assert semiring.mul(a, semiring.one()) == a
    assert semiring.star(a) == BoolExpr.true()
    assert semiring.leq(a & BoolExpr.var("b"), a)
    with pytest.raises(InvalidAnnotationError):
        semiring.coerce(3.14)


@st.composite
def _posbool_expressions(draw, depth=3):
    variables = ["a", "b", "c", "d"]
    if depth == 0 or draw(st.booleans()):
        return BoolExpr.var(draw(st.sampled_from(variables)))
    left = draw(_posbool_expressions(depth=depth - 1))
    right = draw(_posbool_expressions(depth=depth - 1))
    return (left & right) if draw(st.booleans()) else (left | right)


@given(_posbool_expressions(), st.dictionaries(st.sampled_from(["a", "b", "c", "d"]), st.booleans()))
def test_normal_form_preserves_truth_tables(expr, assignment):
    """Canonicalization never changes the Boolean function (property test)."""
    a = BoolExpr.var("a")
    # combining with a and re-simplifying must stay truth-table equivalent
    combined = (expr & a) | expr
    assert combined.evaluate(assignment) == expr.evaluate(assignment) or combined.evaluate(
        assignment
    ) == (expr.evaluate(assignment) and assignment.get("a", False)) or combined.evaluate(assignment) == expr.evaluate(assignment)
    # absorption law as a direct property
    assert ((expr & a) | expr) == expr


@given(_posbool_expressions(), _posbool_expressions())
def test_or_and_commutative_property(e1, e2):
    assert (e1 | e2) == (e2 | e1)
    assert (e1 & e2) == (e2 & e1)
