"""Boolean, tropical, fuzzy, Viterbi, lineage, event and product semirings."""

import math

import pytest

from repro.errors import InvalidAnnotationError, SemiringError
from repro.semirings import (
    BOTTOM,
    BooleanSemiring,
    EventSemiring,
    EventSpace,
    FuzzySemiring,
    NaturalsSemiring,
    ProductSemiring,
    TropicalSemiring,
    ViterbiSemiring,
    WhyProvenanceSemiring,
    WitnessWhySemiring,
    witness_set,
)


class TestBooleanSemiring:
    def test_operations(self):
        b = BooleanSemiring()
        assert b.add(True, False) is True
        assert b.mul(True, False) is False
        assert b.star(False) is True
        assert b.leq(False, True)
        assert not b.leq(True, False)

    def test_coerce(self):
        b = BooleanSemiring()
        assert b.coerce(1) is True
        assert b.coerce(0) is False
        with pytest.raises(InvalidAnnotationError):
            b.coerce("yes")


class TestTropicalSemiring:
    def test_min_plus(self):
        t = TropicalSemiring()
        assert t.add(3, 5) == 3
        assert t.mul(3, 5) == 8
        assert t.zero() == math.inf
        assert t.one() == 0

    def test_annihilation_and_identity(self):
        t = TropicalSemiring()
        assert t.mul(5, t.zero()) == math.inf
        assert t.add(5, t.zero()) == 5
        assert t.mul(5, t.one()) == 5

    def test_star_is_zero_cost(self):
        assert TropicalSemiring().star(4.0) == 0.0

    def test_natural_order_is_reversed_numeric(self):
        t = TropicalSemiring()
        assert t.leq(7, 3)          # 7 can "become" 3 by adding (min-ing) something
        assert not t.leq(3, 7)

    def test_rejects_negative(self):
        with pytest.raises(InvalidAnnotationError):
            TropicalSemiring().coerce(-1)


class TestFuzzyAndViterbi:
    def test_fuzzy_max_min(self):
        f = FuzzySemiring()
        assert f.add(0.3, 0.8) == 0.8
        assert f.mul(0.3, 0.8) == 0.3
        assert f.is_distributive_lattice

    def test_viterbi_max_times(self):
        v = ViterbiSemiring()
        assert v.add(0.3, 0.8) == 0.8
        assert v.mul(0.5, 0.5) == 0.25
        assert not v.is_distributive_lattice

    def test_range_check(self):
        with pytest.raises(InvalidAnnotationError):
            FuzzySemiring().coerce(1.5)
        with pytest.raises(InvalidAnnotationError):
            ViterbiSemiring().coerce(-0.1)


class TestWhyProvenance:
    def test_join_and_union_both_union(self):
        why = WhyProvenanceSemiring()
        assert why.mul(frozenset({"p"}), frozenset({"r"})) == frozenset({"p", "r"})
        assert why.add(frozenset({"p"}), frozenset({"r"})) == frozenset({"p", "r"})

    def test_bottom_behaves_as_zero(self):
        why = WhyProvenanceSemiring()
        assert why.zero() == BOTTOM
        assert why.mul(BOTTOM, frozenset({"p"})) == BOTTOM
        assert why.add(BOTTOM, frozenset({"p"})) == frozenset({"p"})
        assert why.is_zero(BOTTOM)
        assert not why.is_zero(frozenset())

    def test_one_is_empty_set(self):
        why = WhyProvenanceSemiring()
        assert why.one() == frozenset()
        assert why.mul(frozenset(), frozenset({"p"})) == frozenset({"p"})

    def test_coerce_accepts_strings_and_sets(self):
        why = WhyProvenanceSemiring()
        assert why.coerce("p") == frozenset({"p"})
        assert why.coerce({"p", "r"}) == frozenset({"p", "r"})


class TestWitnessWhy:
    def test_multiplication_combines_witnesses(self):
        why = WitnessWhySemiring()
        a = witness_set({"p"})
        b = witness_set({"r"}, {"s"})
        assert why.mul(a, b) == witness_set({"p", "r"}, {"p", "s"})

    def test_one_and_zero(self):
        why = WitnessWhySemiring()
        a = witness_set({"p"})
        assert why.mul(a, why.one()) == a
        assert why.mul(a, why.zero()) == why.zero()
        assert why.add(a, why.zero()) == a


class TestEventSemiring:
    def setup_method(self):
        self.space = EventSpace({"w1": 0.25, "w2": 0.25, "w3": 0.5})
        self.semiring = EventSemiring(self.space)

    def test_operations(self):
        a = frozenset({"w1", "w2"})
        b = frozenset({"w2", "w3"})
        assert self.semiring.add(a, b) == frozenset({"w1", "w2", "w3"})
        assert self.semiring.mul(a, b) == frozenset({"w2"})
        assert self.semiring.one() == self.space.worlds
        assert self.semiring.zero() == frozenset()

    def test_probability(self):
        assert self.semiring.probability(frozenset({"w1", "w2"})) == pytest.approx(0.5)
        assert self.space.probability(frozenset()) == 0.0

    def test_unknown_world_rejected(self):
        with pytest.raises(InvalidAnnotationError):
            self.semiring.coerce(frozenset({"nope"}))
        with pytest.raises(SemiringError):
            self.space.probability({"nope"})

    def test_space_weight_validation(self):
        with pytest.raises(SemiringError):
            EventSpace({"w": 0.4})
        normalized = EventSpace({"a": 2.0, "b": 2.0}, normalize=True)
        assert normalized.probability({"a"}) == pytest.approx(0.5)


class TestProductSemiring:
    def test_componentwise_operations(self):
        product = ProductSemiring([NaturalsSemiring(), BooleanSemiring()])
        assert product.add((2, True), (3, False)) == (5, True)
        assert product.mul((2, True), (3, False)) == (6, False)
        assert product.zero() == (0, False)
        assert product.one() == (1, True)

    def test_flags_inherit_from_factors(self):
        lattices = ProductSemiring([BooleanSemiring(), FuzzySemiring()])
        assert lattices.is_distributive_lattice
        mixed = ProductSemiring([NaturalsSemiring(), BooleanSemiring()])
        assert not mixed.idempotent_add

    def test_shape_validation(self):
        product = ProductSemiring([NaturalsSemiring(), BooleanSemiring()])
        with pytest.raises(InvalidAnnotationError):
            product.coerce((1,))
        with pytest.raises(SemiringError):
            ProductSemiring([NaturalsSemiring()])
