"""The Z and Z[X] rings: conversions, evaluation, and rendering."""

import pytest

from repro.errors import InvalidAnnotationError, SemiringError
from repro.semirings import (
    IntegerPolynomialRing,
    IntegerRing,
    NaturalsSemiring,
    Polynomial,
    ZPolynomial,
    get_semiring,
)
from repro.semirings.polynomial import Monomial


class TestIntegerRing:
    def test_registry_aliases(self):
        assert get_semiring("z").name == "Z"
        assert get_semiring("int").name == "Z"
        assert get_semiring("integers").name == "Z"
        assert get_semiring("zx").name == "Z[X]"
        assert get_semiring("z-polynomial").name == "Z[X]"

    def test_contains_signed_integers_but_not_bools(self):
        ring = IntegerRing()
        assert ring.contains(-5) and ring.contains(0) and ring.contains(7)
        assert not ring.contains(True)
        assert not ring.contains(2.5)

    def test_coercions(self):
        ring = IntegerRing()
        assert ring.coerce(True) == 1 and ring.coerce(False) == 0
        assert ring.from_int(-3) == -3

    def test_not_naturally_ordered(self):
        ring = IntegerRing()
        assert not ring.naturally_ordered
        with pytest.raises(NotImplementedError):
            ring.leq(1, 2)


class TestZPolynomial:
    def test_of_accepts_nx_polynomials_and_strings(self):
        p = ZPolynomial.of(Polynomial.parse("2*p^2 + r*s"))
        assert p.coefficient(Monomial({"p": 2})) == 2
        assert ZPolynomial.of("p + r") == ZPolynomial.var("p") + ZPolynomial.var("r")
        assert ZPolynomial.of(3) == ZPolynomial.constant(3)
        assert ZPolynomial.of(True) == ZPolynomial.one()

    def test_difference_arithmetic(self):
        p, r = ZPolynomial.var("p"), ZPolynomial.var("r")
        assert (p + r) * (p - r) == p * p - r * r
        assert p - p == ZPolynomial.zero()
        assert -(p - r) == r - p
        assert (p - r) ** 2 == p * p - 2 * p * r + r * r

    def test_zero_coefficients_never_stored(self):
        p = ZPolynomial.var("p")
        cancelled = p + (-p)
        assert cancelled.is_zero()
        assert cancelled.terms == ()
        assert not cancelled

    def test_rendering_uses_signs(self):
        p, r = ZPolynomial.var("p"), ZPolynomial.var("r")
        assert str(p - r) == "p - r"
        assert str(-p) == "-p"
        assert str(2 * p - 3 * r * r) == "2·p - 3·r^2"
        assert str(ZPolynomial.zero()) == "0"

    def test_to_polynomial_round_trip_and_guard(self):
        p = ZPolynomial.of("2*p^2 + r")
        assert ZPolynomial.of(p.to_polynomial()) == p
        with pytest.raises(SemiringError):
            (-p).to_polynomial()

    def test_evaluate_in_a_ring_and_in_a_semiring(self):
        ring = IntegerRing()
        p = ZPolynomial.of("p") - ZPolynomial.of("r")
        assert p.evaluate(ring, {"p": 5, "r": 2}) == 3
        # non-negative polynomials evaluate in plain semirings too
        q = ZPolynomial.of("2*p + r")
        assert q.evaluate(NaturalsSemiring(), {"p": 3, "r": 1}) == 7
        # negative coefficients need additive inverses in the target
        with pytest.raises(SemiringError):
            p.evaluate(NaturalsSemiring(), {"p": 5, "r": 2})

    def test_equality_with_unparseable_strings_does_not_raise(self):
        # Regression: comparison must return NotImplemented (falling back to
        # False), not leak a ParseError -- notably for the signed strings
        # ZPolynomial's own __str__ produces.
        p = ZPolynomial.var("p") - ZPolynomial.var("r")
        assert not (p == "p - r")
        assert p != "p - r"
        assert not (ZPolynomial.var("p") == "not a polynomial!")

    def test_rejects_non_integer_coefficients(self):
        with pytest.raises(InvalidAnnotationError):
            ZPolynomial({Monomial.var("p"): 1.5})
        with pytest.raises(InvalidAnnotationError):
            ZPolynomial.of(2.5)


class TestIntegerPolynomialRing:
    def test_ring_operations(self):
        ring = IntegerPolynomialRing()
        p = ring.var("p")
        assert ring.subtract(p, p) == ring.zero()
        assert ring.negate(ring.one()) == ZPolynomial.constant(-1)
        assert ring.coerce("p + r") == p + ring.var("r")
        assert ring.from_int(-2) == ZPolynomial.constant(-2)
        assert ring.format_value(p - ring.var("r")) == "p - r"

    def test_scale_with_negative_counts(self):
        ring = IntegerPolynomialRing()
        p = ring.var("p")
        assert ring.scale(-2, p) == ZPolynomial.of("p") * (-2)
