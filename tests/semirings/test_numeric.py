"""N, N-inf and the NatInf value type (Section 5's completion of the naturals)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidAnnotationError, SemiringError
from repro.semirings import INFINITY, CompletedNaturalsSemiring, NatInf, NaturalsSemiring


class TestNatInf:
    def test_finite_arithmetic_matches_int(self):
        assert NatInf(2) + NatInf(3) == NatInf(5)
        assert NatInf(2) * NatInf(3) == NatInf(6)
        assert NatInf(2) ** 3 == NatInf(8)

    def test_infinity_absorbs_addition(self):
        assert INFINITY + 5 == INFINITY
        assert 5 + INFINITY == INFINITY
        assert INFINITY + INFINITY == INFINITY

    def test_infinity_times_zero_is_zero(self):
        assert INFINITY * 0 == NatInf(0)
        assert NatInf(0) * INFINITY == NatInf(0)

    def test_infinity_times_positive_is_infinity(self):
        assert INFINITY * 3 == INFINITY
        assert 3 * INFINITY == INFINITY

    def test_comparisons(self):
        assert NatInf(2) < NatInf(5)
        assert NatInf(5) < INFINITY
        assert not (INFINITY < INFINITY)
        assert INFINITY <= INFINITY
        assert NatInf(3) == 3

    def test_hash_compatible_with_int(self):
        assert hash(NatInf(4)) == hash(4)
        assert {NatInf(4): "a"}[4] == "a"

    def test_negative_rejected(self):
        with pytest.raises(InvalidAnnotationError):
            NatInf(-1)

    def test_finite_value_of_infinity_raises(self):
        with pytest.raises(SemiringError):
            INFINITY.finite_value()

    def test_repr(self):
        assert repr(INFINITY) == "∞"
        assert repr(NatInf(7)) == "7"

    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=0, max_value=200))
    def test_addition_matches_python_ints(self, a, b):
        assert NatInf(a) + NatInf(b) == NatInf(a + b)
        assert NatInf(a) * NatInf(b) == NatInf(a * b)


class TestNaturalsSemiring:
    def setup_method(self):
        self.semiring = NaturalsSemiring()

    def test_basic_operations(self):
        assert self.semiring.add(2, 3) == 5
        assert self.semiring.mul(2, 3) == 6
        assert self.semiring.zero() == 0
        assert self.semiring.one() == 1

    def test_contains_rejects_bools_and_negatives(self):
        assert not self.semiring.contains(True)
        assert not self.semiring.contains(-1)
        assert self.semiring.contains(0)

    def test_coerce_bool(self):
        assert self.semiring.coerce(True) == 1
        assert self.semiring.coerce(False) == 0

    def test_not_omega_continuous(self):
        assert not self.semiring.is_omega_continuous


class TestCompletedNaturalsSemiring:
    def setup_method(self):
        self.semiring = CompletedNaturalsSemiring()

    def test_flags(self):
        assert self.semiring.is_omega_continuous
        assert self.semiring.has_top
        assert not self.semiring.idempotent_add

    def test_top_and_star(self):
        assert self.semiring.top() == INFINITY
        # 1* = infinity (the paper's example); 0* = 1.
        assert self.semiring.star(NatInf(1)) == INFINITY
        assert self.semiring.star(NatInf(0)) == NatInf(1)

    def test_coerce_int(self):
        assert self.semiring.coerce(4) == NatInf(4)
        with pytest.raises(InvalidAnnotationError):
            self.semiring.coerce(-2)

    def test_natural_order(self):
        assert self.semiring.leq(NatInf(2), NatInf(7))
        assert self.semiring.leq(NatInf(7), INFINITY)
        assert not self.semiring.leq(INFINITY, NatInf(7))
