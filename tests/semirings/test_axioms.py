"""Semiring axioms (Proposition 3.4's algebraic side) for every shipped semiring."""

import pytest

from repro.semirings import check_distributive_lattice, check_semiring_axioms
from repro.semirings.base import Semiring
from repro.semirings.properties import natural_order_is_partial_order

from tests.conftest import ALL_SEMIRINGS, LATTICE_SEMIRINGS, sample_elements


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_commutative_semiring_axioms(semiring):
    report = check_semiring_axioms(semiring, sample_elements(semiring))
    assert report.ok, report.violations


@pytest.mark.parametrize("semiring", LATTICE_SEMIRINGS, ids=lambda s: s.name)
def test_declared_lattices_satisfy_absorption(semiring):
    report = check_distributive_lattice(semiring, sample_elements(semiring))
    assert report.ok, report.violations


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_zero_is_distinct_from_one(semiring):
    # Definition 3.2 requires two distinct distinguished values 0 != 1.  For
    # why-provenance this holds thanks to the Lin(X) bottom element ⊥.
    assert semiring.zero() != semiring.one()


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_natural_order_is_partial_order_on_samples(semiring):
    try:
        report = natural_order_is_partial_order(semiring, sample_elements(semiring))
    except NotImplementedError:
        pytest.skip(f"{semiring.name} does not expose a natural-order decision procedure")
    assert report.ok, report.violations


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_from_int_embeds_naturals(semiring):
    zero = semiring.from_int(0)
    one = semiring.from_int(1)
    assert zero == semiring.zero()
    assert one == semiring.one()
    three = semiring.from_int(3)
    # n -> sum of n ones; for idempotent semirings every positive n collapses to 1.
    if semiring.idempotent_add:
        assert three == semiring.one()
    else:
        assert three == semiring.add(semiring.add(one, one), one)


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_sum_and_product_of_empty_iterables(semiring):
    assert semiring.sum([]) == semiring.zero()
    assert semiring.product([]) == semiring.one()


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_power_and_scale(semiring):
    for value in sample_elements(semiring)[:3]:
        value = semiring.coerce(value)
        assert semiring.power(value, 0) == semiring.one()
        assert semiring.power(value, 1) == value
        assert semiring.scale(0, value) == semiring.zero()
        assert semiring.scale(1, value) == value


def test_broken_structure_fails_axiom_check():
    class BrokenSemiring(Semiring):
        """Subtraction-flavoured structure: not associative/commutative-compatible."""

        name = "broken"

        def zero(self):
            return 0

        def one(self):
            return 1

        def add(self, a, b):
            return a - b  # not commutative, wrong identity behaviour

        def mul(self, a, b):
            return a * b

        def contains(self, value):
            return isinstance(value, int)

    report = check_semiring_axioms(BrokenSemiring(), [1, 2, 3])
    assert not report.ok
    assert any("commutativity of +" in v for v in report.violations)
