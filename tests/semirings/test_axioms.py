"""Semiring (and ring) axioms for every registered semiring.

Proposition 3.4's algebraic side, upgraded from fixed sample pools to a
hypothesis-driven property suite: elements are random ``+``/``.``
combinations of each semiring's generators (``tests/strategies.py``), and
the laws are checked over *every* structure in the registry -- including the
ring axioms (additive inverses) for the structures that declare
``has_negation``.  The fixed-pool checks of
:func:`repro.semirings.check_semiring_axioms` are kept as a cheap exhaustive
pass plus a negative control.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from strategies import semiring_elements

from repro.circuits import to_polynomial
from repro.semirings import (
    available_semirings,
    check_distributive_lattice,
    check_semiring_axioms,
    get_semiring,
)
from repro.semirings.base import Semiring
from repro.semirings.properties import natural_order_is_partial_order

from tests.conftest import ALL_SEMIRINGS, LATTICE_SEMIRINGS, sample_elements

AXIOM_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


def _registry_semirings() -> list[Semiring]:
    """One instance per distinct registered semiring (names are aliases)."""
    by_name: dict[str, Semiring] = {}
    for registry_name in available_semirings():
        semiring = get_semiring(registry_name)
        by_name.setdefault(semiring.name, semiring)
    return [by_name[name] for name in sorted(by_name)]


REGISTRY_SEMIRINGS = _registry_semirings()
RING_SEMIRINGS = [s for s in REGISTRY_SEMIRINGS if s.has_negation]


def _eq(semiring: Semiring, left, right) -> bool:
    """Semantic equality: circuits compare by the polynomial they denote.

    Hash-consed circuit DAGs are canonical up to associativity and
    commutativity but not distributivity, so the distributive law (and any
    law whose two sides multiply differently) must be compared semantically.
    """
    if semiring.name == "Circ[X]":
        return to_polynomial(left) == to_polynomial(right)
    return left == right


@pytest.mark.parametrize("semiring", REGISTRY_SEMIRINGS, ids=lambda s: s.name)
@AXIOM_SETTINGS
@given(data=st.data())
def test_semiring_axioms_on_random_elements(semiring, data):
    a = data.draw(semiring_elements(semiring), label="a")
    b = data.draw(semiring_elements(semiring), label="b")
    c = data.draw(semiring_elements(semiring), label="c")
    zero, one = semiring.zero(), semiring.one()
    add, mul = semiring.add, semiring.mul

    # (K, +, 0) commutative monoid
    assert _eq(semiring, add(a, zero), a)
    assert _eq(semiring, add(a, b), add(b, a))
    assert _eq(semiring, add(add(a, b), c), add(a, add(b, c)))
    # (K, ., 1) commutative monoid, 0 annihilates
    assert _eq(semiring, mul(a, one), a)
    assert _eq(semiring, mul(a, b), mul(b, a))
    assert _eq(semiring, mul(mul(a, b), c), mul(a, mul(b, c)))
    assert _eq(semiring, mul(a, zero), zero)
    # distributivity
    assert _eq(semiring, mul(a, add(b, c)), add(mul(a, b), mul(a, c)))
    # declared idempotence
    if semiring.idempotent_add:
        assert _eq(semiring, add(a, a), a)
    if semiring.idempotent_mul:
        assert _eq(semiring, mul(a, a), a)


@pytest.mark.parametrize("semiring", RING_SEMIRINGS, ids=lambda s: s.name)
@AXIOM_SETTINGS
@given(data=st.data())
def test_ring_axioms_on_random_elements(semiring, data):
    a = data.draw(semiring_elements(semiring), label="a")
    b = data.draw(semiring_elements(semiring), label="b")
    zero = semiring.zero()

    assert semiring.add(a, semiring.negate(a)) == zero
    assert semiring.negate(semiring.negate(a)) == a
    assert semiring.negate(zero) == zero
    # negation is the additive inverse homomorphically
    assert semiring.negate(semiring.add(a, b)) == semiring.add(
        semiring.negate(a), semiring.negate(b)
    )
    assert semiring.mul(semiring.negate(a), b) == semiring.negate(semiring.mul(a, b))
    # derived operations
    assert semiring.subtract(a, b) == semiring.add(a, semiring.negate(b))
    assert semiring.subtract(a, a) == zero
    assert semiring.scale(-1, a) == semiring.negate(a)
    assert semiring.from_int(-2) == semiring.negate(
        semiring.add(semiring.one(), semiring.one())
    )


@pytest.mark.parametrize("semiring", REGISTRY_SEMIRINGS, ids=lambda s: s.name)
def test_semirings_without_negation_refuse_negate(semiring):
    if semiring.has_negation:
        pytest.skip(f"{semiring.name} is a ring")
    from repro.errors import SemiringError

    with pytest.raises(SemiringError):
        semiring.negate(semiring.one())
    with pytest.raises(SemiringError):
        semiring.scale(-1, semiring.one())


# ---------------------------------------------------------------------------
# Fixed-pool exhaustive checks (cheap, kept from the original suite)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_commutative_semiring_axioms(semiring):
    report = check_semiring_axioms(semiring, sample_elements(semiring))
    assert report.ok, report.violations


@pytest.mark.parametrize("semiring", LATTICE_SEMIRINGS, ids=lambda s: s.name)
def test_declared_lattices_satisfy_absorption(semiring):
    report = check_distributive_lattice(semiring, sample_elements(semiring))
    assert report.ok, report.violations


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_zero_is_distinct_from_one(semiring):
    # Definition 3.2 requires two distinct distinguished values 0 != 1.  For
    # why-provenance this holds thanks to the Lin(X) bottom element ⊥.
    assert semiring.zero() != semiring.one()


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_natural_order_is_partial_order_on_samples(semiring):
    try:
        report = natural_order_is_partial_order(semiring, sample_elements(semiring))
    except NotImplementedError:
        pytest.skip(f"{semiring.name} does not expose a natural-order decision procedure")
    assert report.ok, report.violations


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_from_int_embeds_naturals(semiring):
    zero = semiring.from_int(0)
    one = semiring.from_int(1)
    assert zero == semiring.zero()
    assert one == semiring.one()
    three = semiring.from_int(3)
    # n -> sum of n ones; for idempotent semirings every positive n collapses to 1.
    if semiring.idempotent_add:
        assert three == semiring.one()
    else:
        assert three == semiring.add(semiring.add(one, one), one)


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_sum_and_product_of_empty_iterables(semiring):
    assert semiring.sum([]) == semiring.zero()
    assert semiring.product([]) == semiring.one()


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_power_and_scale(semiring):
    for value in sample_elements(semiring)[:3]:
        value = semiring.coerce(value)
        assert semiring.power(value, 0) == semiring.one()
        assert semiring.power(value, 1) == value
        assert semiring.scale(0, value) == semiring.zero()
        assert semiring.scale(1, value) == value


def test_broken_structure_fails_axiom_check():
    class BrokenSemiring(Semiring):
        """Subtraction-flavoured structure: not associative/commutative-compatible."""

        name = "broken"

        def zero(self):
            return 0

        def one(self):
            return 1

        def add(self, a, b):
            return a - b  # not commutative, wrong identity behaviour

        def mul(self, a, b):
            return a * b

        def contains(self, value):
            return isinstance(value, int)

    report = check_semiring_axioms(BrokenSemiring(), [1, 2, 3])
    assert not report.ok
    assert any("commutativity of +" in v for v in report.violations)
