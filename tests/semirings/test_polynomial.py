"""Provenance polynomials N[X] (Definition 4.1) and the Eval_v homomorphism."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidAnnotationError, ParseError, SemiringError
from repro.semirings import (
    BooleanSemiring,
    Monomial,
    NatInf,
    NaturalsSemiring,
    Polynomial,
    PolynomialSemiring,
    PosBoolSemiring,
    ProvenancePolynomialSemiring,
    TropicalSemiring,
    WhyProvenanceSemiring,
)
from repro.semirings.numeric import INFINITY
from repro.semirings.posbool import BoolExpr


class TestMonomial:
    def test_multiplication_adds_exponents(self):
        assert Monomial.var("p") * Monomial.var("p") == Monomial.var("p", 2)
        assert (Monomial.var("p") * Monomial.var("r")).degree == 2

    def test_unit(self):
        assert Monomial.unit().is_unit()
        assert Monomial.var("p") * Monomial.unit() == Monomial.var("p")

    def test_from_bag(self):
        assert Monomial.from_bag(["r", "s", "s"]) == Monomial({"r": 1, "s": 2})

    def test_divides(self):
        assert Monomial.var("p").divides(Monomial({"p": 2, "r": 1}))
        assert not Monomial.var("q").divides(Monomial({"p": 2}))

    def test_ordering_by_degree_then_powers(self):
        assert Monomial.var("p") < Monomial({"p": 2})
        assert Monomial.var("a") < Monomial.var("b")

    def test_rejects_negative_exponent(self):
        with pytest.raises(InvalidAnnotationError):
            Monomial({"p": -1})

    def test_str(self):
        assert str(Monomial.unit()) == "1"
        assert str(Monomial({"p": 2, "r": 1})) == "p^2·r"


class TestPolynomial:
    def test_figure5_polynomials(self):
        """2p^2, pr, 2r^2 + rs, 2s^2 + rs arise from the expected arithmetic."""
        p, r, s = Polynomial.var("p"), Polynomial.var("r"), Polynomial.var("s")
        assert p * p + p * p == Polynomial.parse("2*p^2")
        assert r * r + r * r + r * s == Polynomial.parse("2*r^2 + r*s")
        assert s * s + s * s + r * s == Polynomial.parse("2*s^2 + r*s")

    def test_parse_round_trip(self):
        poly = Polynomial.parse("2*p^2 + r*s + 3")
        assert poly.coefficient("p^2") == 2
        assert poly.coefficient("r*s") == 1
        assert poly.coefficient(Monomial.unit()) == 3
        assert Polynomial.parse(str(poly).replace("·", "*")) == poly

    def test_parse_rejects_garbage(self):
        with pytest.raises(ParseError):
            Polynomial.parse("p +")
        with pytest.raises(ParseError):
            Polynomial.parse("2*(p+q)")

    def test_zero_and_one(self):
        p = Polynomial.var("p")
        assert p + Polynomial.zero() == p
        assert p * Polynomial.one() == p
        assert (p * Polynomial.zero()).is_zero()

    def test_distributivity(self):
        p, r, s = Polynomial.var("p"), Polynomial.var("r"), Polynomial.var("s")
        assert p * (r + s) == p * r + p * s

    def test_evaluate_in_naturals_matches_bag_semantics(self):
        """Evaluating 2r^2 + rs at p=2, r=5, s=1 gives 55 (Theorem 4.3's example)."""
        poly = Polynomial.parse("2*r^2 + r*s")
        value = poly.evaluate(NaturalsSemiring(), {"p": 2, "r": 5, "s": 1})
        assert value == 55

    def test_evaluate_in_boolean(self):
        poly = Polynomial.parse("2*p^2 + r*s")
        assert poly.evaluate(BooleanSemiring(), {"p": True, "r": False, "s": True}) is True
        assert poly.evaluate(BooleanSemiring(), {"p": False, "r": False, "s": True}) is False

    def test_evaluate_in_posbool_drops_exponents_and_coefficients(self):
        poly = Polynomial.parse("2*p^2 + r*s")
        result = poly.evaluate(
            PosBoolSemiring(),
            {"p": BoolExpr.var("p"), "r": BoolExpr.var("r"), "s": BoolExpr.var("s")},
        )
        assert result == BoolExpr.var("p") | (BoolExpr.var("r") & BoolExpr.var("s"))

    def test_evaluate_in_why_provenance(self):
        poly = Polynomial.parse("2*r^2 + r*s")
        result = poly.evaluate(
            WhyProvenanceSemiring(), {"r": frozenset({"r"}), "s": frozenset({"s"})}
        )
        assert result == frozenset({"r", "s"})

    def test_evaluate_in_tropical(self):
        # In (min, +): 2*r^2 + r*s at r=3, s=10 -> min(3+3, 3+10) = 6.
        poly = Polynomial.parse("2*r^2 + r*s")
        assert poly.evaluate(TropicalSemiring(), {"r": 3, "s": 10}) == 6.0

    def test_missing_valuation_variable_raises(self):
        with pytest.raises(SemiringError):
            Polynomial.var("p").evaluate(NaturalsSemiring(), {})

    def test_infinite_coefficient_handling(self):
        poly = Polynomial({Monomial.var("p"): INFINITY})
        assert poly.has_infinite_coefficient()
        from repro.semirings import CompletedNaturalsSemiring

        assert poly.evaluate(CompletedNaturalsSemiring(), {"p": NatInf(2)}) == INFINITY
        assert poly.evaluate(CompletedNaturalsSemiring(), {"p": NatInf(0)}) == NatInf(0)
        # idempotent targets absorb the infinite coefficient
        assert poly.evaluate(BooleanSemiring(), {"p": True}) is True
        with pytest.raises(SemiringError):
            poly.evaluate(NaturalsSemiring(), {"p": 2})

    def test_rename_and_truncate(self):
        poly = Polynomial.parse("2*p^2 + r*s")
        assert poly.rename({"p": "q"}) == Polynomial.parse("2*q^2 + r*s")
        assert poly.truncate(1).is_zero()
        assert poly.truncate(2) == poly

    def test_number_of_derivations(self):
        assert Polynomial.parse("2*s^2 + r*s").number_of_derivations() == 3


class TestPolynomialSemiring:
    def test_provenance_semiring_rejects_infinite_coefficients(self):
        nx = ProvenancePolynomialSemiring()
        with pytest.raises(InvalidAnnotationError):
            nx.check(Polynomial({Monomial.var("p"): INFINITY}))
        assert PolynomialSemiring(allow_infinite_coefficients=True).contains(
            Polynomial({Monomial.var("p"): INFINITY})
        )

    def test_natural_order_is_coefficientwise(self):
        nx = ProvenancePolynomialSemiring()
        assert nx.leq(Polynomial.parse("p"), Polynomial.parse("2*p + r"))
        assert not nx.leq(Polynomial.parse("2*p"), Polynomial.parse("p + r"))


_variables = st.sampled_from(["p", "r", "s", "t"])
_monomials = st.dictionaries(_variables, st.integers(min_value=1, max_value=3), max_size=3).map(
    Monomial
)
_polynomials = st.dictionaries(_monomials, st.integers(min_value=1, max_value=4), max_size=4).map(
    Polynomial
)


@given(_polynomials, _polynomials, _polynomials)
def test_polynomial_semiring_laws_property(a, b, c):
    assert a + b == b + a
    assert a * b == b * a
    assert (a + b) + c == a + (b + c)
    assert (a * b) * c == a * (b * c)
    assert a * (b + c) == a * b + a * c


@given(_polynomials, _polynomials, st.dictionaries(_variables, st.integers(0, 5)))
def test_evaluation_is_a_homomorphism_property(a, b, valuation):
    """Eval_v(a + b) = Eval_v(a) + Eval_v(b), and likewise for products (Prop. 4.2)."""
    bag = NaturalsSemiring()
    valuation = {v: valuation.get(v, 0) for v in ["p", "r", "s", "t"]}
    assert (a + b).evaluate(bag, valuation) == a.evaluate(bag, valuation) + b.evaluate(
        bag, valuation
    )
    assert (a * b).evaluate(bag, valuation) == a.evaluate(bag, valuation) * b.evaluate(
        bag, valuation
    )
