"""Formal power series N-inf[[X]] (Section 6)."""

import pytest

from repro.errors import SemiringError
from repro.semirings import FormalPowerSeries, Monomial, NatInf, Polynomial, PowerSeriesSemiring
from repro.semirings.numeric import INFINITY


def test_embedding_of_polynomials_is_exact():
    poly = Polynomial.parse("2*p^2 + r*s")
    series = FormalPowerSeries.from_polynomial(poly)
    assert series.is_exact
    assert series.to_polynomial() == poly


def test_truncated_series_drop_high_degree_terms():
    series = FormalPowerSeries.from_polynomial(Polynomial.parse("p + p^3"), truncation_degree=2)
    assert series.coefficient(Monomial.var("p")) == NatInf(1)
    with pytest.raises(SemiringError):
        series.coefficient(Monomial.var("p", 3))


def test_addition_and_multiplication():
    s = FormalPowerSeries.var("s")
    series = s + s * s
    assert series.coefficient(Monomial.var("s")) == NatInf(1)
    assert series.coefficient(Monomial.var("s", 2)) == NatInf(1)
    assert series.coefficient(Monomial.var("s", 3)) == NatInf(0)


def test_multiplication_respects_truncation():
    semiring = PowerSeriesSemiring(truncation_degree=3)
    s = semiring.var("s")
    v = s
    for _ in range(5):
        v = semiring.add(s, semiring.mul(v, v))
    # coefficients of the v = s + v^2 fixpoint: Catalan numbers 1, 1, 2
    assert v.coefficient(Monomial.var("s")) == NatInf(1)
    assert v.coefficient(Monomial.var("s", 2)) == NatInf(1)
    assert v.coefficient(Monomial.var("s", 3)) == NatInf(2)


def test_infinite_coefficients_are_representable():
    series = FormalPowerSeries({Monomial.var("x"): INFINITY}, truncation_degree=4)
    assert series.coefficient(Monomial.var("x")).is_infinite


def test_to_polynomial_requires_exactness():
    truncated = FormalPowerSeries.var("s", truncation_degree=2)
    with pytest.raises(SemiringError):
        truncated.to_polynomial()


def test_evaluation_of_exact_series_matches_polynomial_evaluation():
    from repro.semirings import CompletedNaturalsSemiring

    poly = Polynomial.parse("2*r^2 + r*s")
    series = FormalPowerSeries.from_polynomial(poly)
    natinf = CompletedNaturalsSemiring()
    valuation = {"r": NatInf(5), "s": NatInf(1)}
    assert series.evaluate(natinf, valuation) == poly.evaluate(natinf, valuation)


def test_semiring_interface_and_order():
    semiring = PowerSeriesSemiring(truncation_degree=4)
    a = semiring.var("x")
    b = semiring.add(a, semiring.var("y"))
    assert semiring.leq(a, b)
    assert not semiring.leq(b, a)
    assert semiring.add(a, semiring.zero()) == a
    assert semiring.mul(a, semiring.one()) == a


def test_str_mentions_truncation():
    truncated = FormalPowerSeries.var("s", truncation_degree=3)
    assert "O(deg>3)" in str(truncated)
    exact = FormalPowerSeries.var("s")
    assert "O(" not in str(exact)
