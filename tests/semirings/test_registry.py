"""The named semiring registry."""

import pytest

from repro.errors import SemiringError
from repro.semirings import (
    BooleanSemiring,
    NaturalsSemiring,
    available_semirings,
    get_semiring,
    register_semiring,
)


def test_lookup_by_common_names():
    assert isinstance(get_semiring("bool"), BooleanSemiring)
    assert isinstance(get_semiring("BAG"), NaturalsSemiring)
    assert get_semiring("provenance").name == "N[X]"
    assert get_semiring("natinf").name == "N∞"
    assert get_semiring("why").name == "Why(X)"


def test_unknown_name_raises_with_suggestions():
    with pytest.raises(SemiringError) as excinfo:
        get_semiring("no-such-semiring")
    assert "available" in str(excinfo.value)


def test_available_semirings_is_sorted_and_nonempty():
    names = list(available_semirings())
    assert names == sorted(names)
    assert "bool" in names and "provenance" in names


def test_register_custom_and_reject_duplicates():
    class TinySemiring(BooleanSemiring):
        name = "tiny"

    register_semiring("tiny-test-semiring", TinySemiring)
    assert get_semiring("tiny-test-semiring").name == "tiny"
    with pytest.raises(SemiringError):
        register_semiring("tiny-test-semiring", TinySemiring)
