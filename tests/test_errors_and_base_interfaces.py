"""Error hierarchy, selection predicates, display helpers and base-class fallbacks."""

import pytest

from repro import errors
from repro.algebra import predicates
from repro.relations import KRelation, Tup, format_relation
from repro.semirings import NaturalsSemiring, Semiring
from repro.semirings.base import Semiring as BaseSemiring


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in errors.__all__:
            if name == "ReproError":
                continue
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_grounding_error_is_a_datalog_error(self):
        assert issubclass(errors.GroundingError, errors.DatalogError)
        assert issubclass(errors.InvalidAnnotationError, errors.SemiringError)


class TestPredicates:
    def setup_method(self):
        self.tup = Tup(a=3, b=3, c=7)

    def test_constants(self):
        assert predicates.true(self.tup) is True
        assert predicates.false(self.tup) is False

    def test_equalities(self):
        assert predicates.attr_eq("a", "b")(self.tup)
        assert not predicates.attr_eq("a", "c")(self.tup)
        assert predicates.attr_eq_const("c", 7)(self.tup)
        assert predicates.attr_neq_const("c", 8)(self.tup)

    def test_comparisons(self):
        assert predicates.comparison("c", ">", 5)(self.tup)
        assert predicates.comparison("a", "<=", 3)(self.tup)
        assert not predicates.comparison("a", "!=", 3)(self.tup)

    def test_combinators(self):
        both = predicates.conjunction(
            predicates.attr_eq("a", "b"), predicates.comparison("c", ">", 1)
        )
        either = predicates.disjunction(
            predicates.attr_eq("a", "c"), predicates.comparison("c", ">", 1)
        )
        neither = predicates.negation(either)
        assert both(self.tup) and either(self.tup) and not neither(self.tup)


class TestDisplay:
    def test_format_relation_alignment_and_sorting(self):
        bag = NaturalsSemiring()
        relation = KRelation(bag, ["name", "n"], [(("zeta", 1), 2), (("alpha", 2), 7)])
        table = format_relation(relation)
        lines = table.splitlines()
        assert lines[0].startswith("name")
        # sorted by value: alpha row before zeta row
        assert lines[2].startswith("alpha") and lines[3].startswith("zeta")

    def test_custom_annotation_header(self):
        bag = NaturalsSemiring()
        relation = KRelation(bag, ["a"], [(("x",), 1)])
        table = format_relation(relation, annotation_header="multiplicity")
        assert "multiplicity" in table.splitlines()[0]


class TestBaseSemiringFallbacks:
    class Minimal(BaseSemiring):
        name = "minimal"

        def zero(self):
            return 0

        def one(self):
            return 1

        def add(self, a, b):
            return a + b

        def mul(self, a, b):
            return a * b

        def contains(self, value):
            return isinstance(value, int) and value >= 0

    def test_top_and_star_are_not_available_by_default(self):
        minimal = self.Minimal()
        with pytest.raises(errors.SemiringError):
            minimal.top()
        with pytest.raises(NotImplementedError):
            minimal.star(1)
        with pytest.raises(NotImplementedError):
            minimal.leq(1, 2)

    def test_negative_scale_and_power_rejected(self):
        minimal = self.Minimal()
        with pytest.raises(errors.SemiringError):
            minimal.scale(-1, 2)
        with pytest.raises(errors.SemiringError):
            minimal.power(2, -1)
        with pytest.raises(errors.SemiringError):
            minimal.from_int(-3)

    def test_sum_of_products_and_iterate_closure(self):
        minimal = self.Minimal()
        assert minimal.sum_of_products([[2, 3], [4]]) == 10
        chain = list(minimal.iterate_closure(lambda x: x + 1, start=0, max_iterations=4))
        assert chain == [0, 1, 2, 3]

    def test_coerce_default_rejects_foreign_values(self):
        minimal = self.Minimal()
        assert minimal.coerce(3) == 3
        with pytest.raises(errors.InvalidAnnotationError):
            minimal.coerce("three")

    def test_check_rejects_invalid(self):
        minimal = self.Minimal()
        with pytest.raises(errors.InvalidAnnotationError):
            minimal.check(-1)

    def test_str_and_repr(self):
        minimal = self.Minimal()
        assert str(minimal) == "minimal"
        assert "minimal" in repr(minimal)
        assert isinstance(minimal, Semiring)
